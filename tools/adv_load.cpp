// adv_load — closed-loop load generator for the serving layer.
//
// Drives a QueryServer the way a fleet of analysis clients would: N
// concurrent closed-loop clients per tenant, each submitting a query,
// waiting for the full result, thinking for a moment, and going again.
// The query mix is split into a small *hot set* (repeated queries that
// should ride the server's result cache) and a large *cold set* (distinct
// predicates that always miss), selected per draw with --hot-ratio.
//
// Two modes:
//   --selfhost            generate a small ipars dataset in a temp dir and
//                         serve it in-process (CI smoke, no setup)
//   --host H --port P     aim at an already-running server
//
// Usage:
//   adv_load [--selfhost | --host H --port P]
//            [--duration S] [--tenants name:weight:clients,...]
//            [--hot-ratio R] [--hot-set N] [--cold-set N] [--think-ms M]
//            [--max-concurrent N] [--max-queue N] [--no-result-cache]
//            [--timesteps T] [--seed S] [--json] [--quiet]
//            [--check-fairness TOL] [--check-cache-hits N]
//
// Prints per-tenant completed shares, latency quantiles (p50/p99/p999),
// qps, and the server's own serving-tail summary; --json emits one JSON
// object instead.  --check-fairness TOL exits nonzero when any tenant's
// completed share deviates from its weight share by more than TOL
// (absolute); --check-cache-hits N exits nonzero when the server reports
// fewer than N result-cache hits.  Exit: 0 ok, 1 a check failed, 2 usage.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/error.h"
#include "common/tempdir.h"
#include "dataset/ipars.h"
#include "metadata/xml.h"
#include "serve/result_cache.h"
#include "storm/net.h"

using namespace adv;
using Clock = std::chrono::steady_clock;

namespace {

[[noreturn]] void usage(const char* msg = nullptr) {
  if (msg) std::fprintf(stderr, "error: %s\n\n", msg);
  std::fprintf(
      stderr,
      "adv_load — closed-loop load generator for the serving layer\n\n"
      "usage: adv_load [--selfhost | --host H --port P]\n"
      "                [--duration S] [--tenants name:weight:clients,...]\n"
      "                [--hot-ratio R] [--hot-set N] [--cold-set N]\n"
      "                [--think-ms M] [--max-concurrent N] [--max-queue N]\n"
      "                [--no-result-cache] [--timesteps T] [--seed S]\n"
      "                [--json] [--quiet]\n"
      "                [--check-fairness TOL] [--check-cache-hits N]\n");
  std::exit(2);
}

struct TenantSpec {
  std::string name;
  double weight = 1.0;
  int clients = 4;
};

// "alice:2:8,bob:1:8" -> two tenants.  Weight and client count optional:
// "alice,bob" means weight 1, 4 clients each.
std::vector<TenantSpec> parse_tenants(const std::string& spec) {
  std::vector<TenantSpec> out;
  std::size_t at = 0;
  while (at <= spec.size()) {
    std::size_t comma = spec.find(',', at);
    std::string entry = spec.substr(
        at, comma == std::string::npos ? std::string::npos : comma - at);
    if (!entry.empty()) {
      TenantSpec t;
      std::size_t c1 = entry.find(':');
      t.name = entry.substr(0, c1);
      if (c1 != std::string::npos) {
        std::size_t c2 = entry.find(':', c1 + 1);
        t.weight = std::stod(entry.substr(
            c1 + 1, c2 == std::string::npos ? std::string::npos : c2 - c1 - 1));
        if (c2 != std::string::npos) t.clients = std::stoi(entry.substr(c2 + 1));
      }
      out.push_back(std::move(t));
    }
    if (comma == std::string::npos) break;
    at = comma + 1;
  }
  return out;
}

// Small deterministic PRNG per client (no shared state, reproducible).
struct Lcg {
  uint64_t s;
  explicit Lcg(uint64_t seed) : s(seed * 2862933555777941757ull + 3037000493ull) {}
  uint64_t next() {
    s = s * 6364136223846793005ull + 1442695040888963407ull;
    return s >> 17;
  }
  double unit() { return static_cast<double>(next() % (1u << 24)) / (1u << 24); }
};

struct ClientStats {
  uint64_t completed = 0;
  uint64_t rejected = 0;
  uint64_t quota_rejected = 0;
  uint64_t errors = 0;
  uint64_t cache_hits = 0;  // served_from_cache per the kStats v2.2 tail
  std::vector<double> latencies_ms;
};

double quantile_ms(std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0;
  std::size_t i = static_cast<std::size_t>(q * static_cast<double>(sorted.size()));
  if (i >= sorted.size()) i = sorted.size() - 1;
  return sorted[i];
}

}  // namespace

int main(int argc, char** argv) {
  std::map<std::string, std::string> flags;
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a.rfind("--", 0) != 0) usage("unexpected positional argument");
    std::string key = a.substr(2);
    if (key == "selfhost" || key == "json" || key == "quiet" ||
        key == "no-result-cache") {
      flags[key] = "1";
    } else {
      if (i + 1 >= argc) usage(("missing value for --" + key).c_str());
      flags[key] = argv[++i];
    }
  }
  auto flag = [&](const std::string& k, const std::string& def) {
    auto it = flags.find(k);
    return it == flags.end() ? def : it->second;
  };
  const bool selfhost = flags.count("selfhost") > 0;
  const bool json = flags.count("json") > 0;
  const bool quiet = flags.count("quiet") > 0;
  const double duration_s = std::stod(flag("duration", "5"));
  const double hot_ratio = std::stod(flag("hot-ratio", "0.9"));
  const int hot_set = std::stoi(flag("hot-set", "4"));
  const int cold_set = std::stoi(flag("cold-set", "64"));
  const double think_ms = std::stod(flag("think-ms", "0"));
  const uint64_t seed = std::stoull(flag("seed", "42"));
  const int timesteps = std::stoi(flag("timesteps", "8"));
  std::vector<TenantSpec> tenants = parse_tenants(flag("tenants", "a:1:4,b:1:4"));
  if (tenants.empty()) usage("no tenants");
  if (!selfhost && flags.count("port") == 0)
    usage("need --selfhost or --host/--port");

  try {
    // Self-hosted server over a freshly generated dataset.
    std::unique_ptr<TempDir> tmp;
    std::unique_ptr<storm::QueryServer> server;
    std::string host = flag("host", "127.0.0.1");
    int port = std::stoi(flag("port", "0"));
    if (selfhost) {
      tmp = std::make_unique<TempDir>("advload");
      dataset::IparsConfig cfg;
      cfg.nodes = 2;
      cfg.rels = 2;
      cfg.timesteps = timesteps;
      cfg.grid_per_node = 32;
      cfg.pad_vars = 0;
      auto gen = dataset::generate_ipars(cfg, dataset::IparsLayout::kV,
                                         tmp->str());
      auto plan = std::make_shared<codegen::DataServicePlan>(
          meta::parse_descriptor(gen.descriptor_text), gen.dataset_name,
          gen.root);
      sched::SchedulerOptions sopts;
      sopts.max_concurrent_queries =
          static_cast<std::size_t>(std::stoi(flag("max-concurrent", "2")));
      sopts.max_queue_depth =
          static_cast<std::size_t>(std::stoi(flag("max-queue", "64")));
      for (const auto& t : tenants) sopts.tenants[t.name].weight = t.weight;
      serve::ServeOptions vopts;
      vopts.enable_result_cache = flags.count("no-result-cache") == 0;
      server = std::make_unique<storm::QueryServer>(plan, storm::ClusterOptions{},
                                                    0, nullptr, sopts, vopts);
      host = "127.0.0.1";
      port = server->port();
    }

    // Query mix.  Hot queries repeat verbatim (result-cache food); cold
    // queries vary a float threshold so every draw is a new cache key.
    std::vector<std::string> hot;
    for (int i = 0; i < hot_set; ++i) {
      hot.push_back("SELECT REL, TIME, SOIL FROM IparsData WHERE TIME = " +
                    std::to_string(1 + i % timesteps));
    }
    std::vector<std::string> cold;
    for (int i = 0; i < cold_set; ++i) {
      char pred[96];
      std::snprintf(pred, sizeof pred, " AND SOIL < %.6f",
                    0.10 + 0.80 * static_cast<double>(i) /
                               std::max(1, cold_set - 1));
      cold.push_back("SELECT REL, TIME, SOIL FROM IparsData WHERE TIME = " +
                     std::to_string(1 + i % timesteps) + pred);
    }

    // Launch one closed loop per client.
    struct Worker {
      std::thread thread;
      ClientStats stats;
      std::string tenant;
    };
    std::vector<std::unique_ptr<Worker>> workers;
    std::atomic<bool> stop{false};
    storm::SchedInfo last_sched;
    std::mutex sched_mu;
    const auto deadline = Clock::now() + std::chrono::duration<double>(duration_s);
    int client_idx = 0;
    for (const auto& t : tenants) {
      for (int c = 0; c < t.clients; ++c, ++client_idx) {
        auto w = std::make_unique<Worker>();
        w->tenant = t.name;
        Worker* wp = w.get();
        uint64_t cseed = seed * 1000003ull + static_cast<uint64_t>(client_idx);
        wp->thread = std::thread([&, wp, cseed] {
          Lcg rng(cseed);
          storm::QueryClient client(host, port, 5.0);
          while (!stop.load(std::memory_order_relaxed) &&
                 Clock::now() < deadline) {
            const bool is_hot = rng.unit() < hot_ratio;
            const std::string& sql =
                is_hot ? hot[rng.next() % hot.size()]
                       : cold[rng.next() % cold.size()];
            storm::QueryOptions qo;
            qo.tenant = wp->tenant;
            auto t0 = Clock::now();
            try {
              storm::RemoteResult r = client.execute(sql, {}, qo);
              double ms = std::chrono::duration<double, std::milli>(
                              Clock::now() - t0)
                              .count();
              ++wp->stats.completed;
              wp->stats.latencies_ms.push_back(ms);
              if (r.sched.serving_valid && r.sched.served_from_cache)
                ++wp->stats.cache_hits;
              if (r.sched.valid) {
                std::lock_guard<std::mutex> lk(sched_mu);
                last_sched = r.sched;
              }
            } catch (const storm::TenantQuotaError&) {
              ++wp->stats.rejected;
              ++wp->stats.quota_rejected;
            } catch (const storm::QueueFullError& e) {
              ++wp->stats.rejected;
              double backoff =
                  std::min(0.05, std::max(0.001, e.retry_after_seconds));
              std::this_thread::sleep_for(
                  std::chrono::duration<double>(backoff));
            } catch (const Error&) {
              ++wp->stats.errors;
            }
            if (think_ms > 0) {
              // Exponential think time with the configured mean.
              double u = std::max(1e-9, rng.unit());
              std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
                  -think_ms * std::log(u)));
            }
          }
        });
        workers.push_back(std::move(w));
      }
    }
    for (auto& w : workers) w->thread.join();
    stop.store(true);

    // Aggregate.
    uint64_t completed = 0, rejected = 0, errors = 0, cache_hits = 0;
    std::vector<double> lat;
    std::map<std::string, uint64_t> per_tenant;
    std::map<std::string, double> weight_of;
    for (const auto& t : tenants) {
      per_tenant[t.name] = 0;
      weight_of[t.name] = t.weight;
    }
    for (const auto& w : workers) {
      completed += w->stats.completed;
      rejected += w->stats.rejected;
      errors += w->stats.errors;
      cache_hits += w->stats.cache_hits;
      per_tenant[w->tenant] += w->stats.completed;
      lat.insert(lat.end(), w->stats.latencies_ms.begin(),
                 w->stats.latencies_ms.end());
    }
    std::sort(lat.begin(), lat.end());
    const double p50 = quantile_ms(lat, 0.50);
    const double p99 = quantile_ms(lat, 0.99);
    const double p999 = quantile_ms(lat, 0.999);
    const double qps = static_cast<double>(completed) / duration_s;
    uint64_t server_hits = last_sched.serving_valid
                               ? last_sched.result_cache.hits
                               : cache_hits;

    double weight_sum = 0;
    for (const auto& t : tenants) weight_sum += t.weight;
    double max_fair_dev = 0;
    for (const auto& [name, n] : per_tenant) {
      double share = completed ? static_cast<double>(n) /
                                     static_cast<double>(completed)
                               : 0;
      double expect = weight_of[name] / weight_sum;
      max_fair_dev = std::max(max_fair_dev, std::fabs(share - expect));
    }

    if (json) {
      std::printf("{\"duration_s\": %.3f, \"qps\": %.2f, \"completed\": %llu, "
                  "\"rejected\": %llu, \"errors\": %llu, "
                  "\"p50_ms\": %.3f, \"p99_ms\": %.3f, \"p999_ms\": %.3f, "
                  "\"client_cache_hits\": %llu, \"server_cache_hits\": %llu, "
                  "\"max_fair_share_deviation\": %.4f, \"tenants\": {",
                  duration_s, qps,
                  static_cast<unsigned long long>(completed),
                  static_cast<unsigned long long>(rejected),
                  static_cast<unsigned long long>(errors), p50, p99, p999,
                  static_cast<unsigned long long>(cache_hits),
                  static_cast<unsigned long long>(server_hits), max_fair_dev);
      bool first = true;
      for (const auto& [name, n] : per_tenant) {
        std::printf("%s\"%s\": {\"completed\": %llu, \"share\": %.4f, "
                    "\"weight\": %g}",
                    first ? "" : ", ", name.c_str(),
                    static_cast<unsigned long long>(n),
                    completed ? static_cast<double>(n) /
                                    static_cast<double>(completed)
                              : 0.0,
                    weight_of[name]);
        first = false;
      }
      std::printf("}}\n");
    } else if (!quiet) {
      std::printf("adv_load: %.1fs closed loop, %d clients\n", duration_s,
                  client_idx);
      std::printf("  completed %llu (%.1f qps)  rejected %llu  errors %llu\n",
                  static_cast<unsigned long long>(completed), qps,
                  static_cast<unsigned long long>(rejected),
                  static_cast<unsigned long long>(errors));
      std::printf("  latency p50/p99/p999: %.1f/%.1f/%.1f ms\n", p50, p99,
                  p999);
      std::printf("  cache hits: %llu client-observed, %llu server-reported\n",
                  static_cast<unsigned long long>(cache_hits),
                  static_cast<unsigned long long>(server_hits));
      for (const auto& [name, n] : per_tenant) {
        std::printf("  tenant %-12s completed %llu (%.0f%%, weight %g)\n",
                    name.c_str(), static_cast<unsigned long long>(n),
                    completed ? 100.0 * static_cast<double>(n) /
                                    static_cast<double>(completed)
                              : 0.0,
                    weight_of[name]);
      }
      if (last_sched.serving_valid) {
        std::printf("server serving tail:\n%s", last_sched.pretty().c_str());
      }
    }

    int rc = 0;
    if (flags.count("check-fairness") > 0) {
      double tol = std::stod(flags["check-fairness"]);
      if (max_fair_dev > tol) {
        std::fprintf(stderr,
                     "FAIL fairness: max share deviation %.3f > tol %.3f\n",
                     max_fair_dev, tol);
        rc = 1;
      }
    }
    if (flags.count("check-cache-hits") > 0) {
      uint64_t need = std::stoull(flags["check-cache-hits"]);
      if (server_hits < need) {
        std::fprintf(stderr, "FAIL cache: %llu server hits < required %llu\n",
                     static_cast<unsigned long long>(server_hits),
                     static_cast<unsigned long long>(need));
        rc = 1;
      }
    }
    return rc;
  } catch (const Error& e) {
    std::fprintf(stderr, "adv_load: %s\n", e.what());
    return 1;
  }
}
