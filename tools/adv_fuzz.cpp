// adv_fuzz — replay CLI for the differential query-fuzz harness.
//
// Every failing dq test prints a one-line replay command pointing here:
//
//   adv_fuzz --seed 17
//   adv_fuzz --seed 17 --fault-spec 'pread.eio=0.01,mmap.fail=0.5' \
//            --fault-seed 17 --server
//
// The binary shares tests/dq/dq_run.cpp with the gtest suites, so a replay
// is the exact run — same generated dataset, same query corpus, same fault
// schedule.  Exit status 0 = every case identical (or a clean typed error
// under an armed campaign), 1 = at least one failure, 2 = bad usage.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/error.h"
#include "dq/dq_run.h"
#include "dq/dq_shrink.h"
#include "faultz/faultz.h"

namespace {

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --seed N [options]\n"
      "  --seed N          corpus seed (dataset layout + queries)\n"
      "  --seeds K         run K consecutive seeds starting at N (default 1)\n"
      "  --shrink N        greedily minimize the failing case for seed N\n"
      "                    (queries, WHERE conjuncts, dataset shape) and\n"
      "                    print the minimized descriptor + corpus\n"
      "  --queries M       queries per seed (default 5)\n"
      "  --campaign NAME   named fault campaign: io, net, node, agg, zm,\n"
      "                    sched, jit\n"
      "  --fault-spec S    explicit fault spec, e.g. 'pread.eio=0.01:3'\n"
      "  --fault-seed N    fault-plan seed (default: the corpus seed)\n"
      "  --server          also round-trip queries through the v2 protocol\n"
      "  --dist            also scatter/gather through per-node daemons\n"
      "                    behind a DistCoordinator (in-process)\n"
      "  --partial         run the fast path in partial-results mode\n"
      "  --pread           force pread I/O (no mmap) on the fast path\n"
      "  --kernel MODE     kernel tier for the fast path: interp, vector,\n"
      "                    jit (default: auto = env/vector)\n"
      "  --deadline SECS   per-query deadline (default 20)\n",
      argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t seed = 0;
  bool have_seed = false;
  bool shrink = false;
  int nseeds = 1;
  bool have_fault_seed = false;
  adv::dq::DqOptions opts;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: missing value for %s\n", argv[0],
                     arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--seed") {
      seed = std::strtoull(next(), nullptr, 10);
      have_seed = true;
    } else if (arg == "--shrink") {
      seed = std::strtoull(next(), nullptr, 10);
      have_seed = true;
      shrink = true;
    } else if (arg == "--seeds") {
      nseeds = std::atoi(next());
    } else if (arg == "--queries") {
      opts.queries_per_seed = std::atoi(next());
    } else if (arg == "--campaign") {
      opts.fault_spec = adv::dq::campaign_spec(next());
    } else if (arg == "--fault-spec") {
      opts.fault_spec = next();
    } else if (arg == "--fault-seed") {
      opts.fault_seed = std::strtoull(next(), nullptr, 10);
      have_fault_seed = true;
    } else if (arg == "--server") {
      opts.with_server = true;
    } else if (arg == "--dist") {
      opts.with_dist = true;
    } else if (arg == "--partial") {
      opts.partial_results = true;
    } else if (arg == "--pread") {
      opts.io_mode = adv::IoMode::kPread;
    } else if (arg == "--kernel") {
      std::string name = next();
      if (!adv::kernel_mode_from_name(name, opts.kernel_mode)) {
        std::fprintf(stderr, "%s: unknown kernel mode %s\n", argv[0],
                     name.c_str());
        return usage(argv[0]);
      }
    } else if (arg == "--deadline") {
      opts.deadline_seconds = std::atof(next());
    } else if (arg == "--help" || arg == "-h") {
      return usage(argv[0]);
    } else {
      std::fprintf(stderr, "%s: unknown option %s\n", argv[0], arg.c_str());
      return usage(argv[0]);
    }
  }
  if (!have_seed || nseeds < 1 || opts.queries_per_seed < 1)
    return usage(argv[0]);

  if (shrink) {
    if (!have_fault_seed) opts.fault_seed = seed;
    try {
      adv::dq::DqShrinkResult res = adv::dq::shrink_seed(
          seed, opts, [](const std::string& line) {
            std::fprintf(stderr, "shrink: %s\n", line.c_str());
          });
      if (!res.failed_initially) {
        std::printf("seed %llu passes; nothing to shrink\n",
                    static_cast<unsigned long long>(seed));
        return 0;
      }
      std::printf("minimized seed %llu after %d candidates (%d kept):\n"
                  "  shape: %s%s\n",
                  static_cast<unsigned long long>(seed), res.attempts,
                  res.accepted, adv::dq::shape_string(res.dataset).c_str(),
                  res.opts.with_joins ? "" : "  (join round not needed)");
      for (const std::string& q : res.queries)
        std::printf("  query: %s\n", q.c_str());
      std::printf("  failure: %s\n",
                  res.report.failures.empty() ? "(none?)"
                                              : res.report.failures[0].c_str());
      std::printf("-- minimized descriptor --\n%s",
                  res.dataset.descriptor().c_str());
      return 1;  // the minimized case still fails, by construction
    } catch (const adv::Error& e) {
      std::fprintf(stderr, "adv_fuzz: %s\n", e.what());
      return 1;
    }
  }

  adv::dq::DqReport total;
  try {
    for (int k = 0; k < nseeds; ++k) {
      uint64_t s = seed + static_cast<uint64_t>(k);
      adv::dq::DqOptions o = opts;
      if (!have_fault_seed) o.fault_seed = s;
      adv::dq::DqReport rep = adv::dq::run_seed(s, o);
      std::printf("seed %llu: %s\n", static_cast<unsigned long long>(s),
                  rep.summary().c_str());
      total.merge(rep);
    }
  } catch (const adv::Error& e) {
    std::fprintf(stderr, "adv_fuzz: %s\n", e.what());
    return 1;
  }

  if (!opts.fault_spec.empty())
    std::printf("fault sites:\n%s",
                adv::faultz::FaultPlan::instance().stats_string().c_str());
  if (nseeds > 1) std::printf("total: %s\n", total.summary().c_str());
  for (const std::string& f : total.failures)
    std::printf("FAILURE: %s\n", f.c_str());
  return total.ok() ? 0 : 1;
}
