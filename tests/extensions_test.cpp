// Tests for extensions beyond the paper's minimum: multi-threaded
// extraction and the emitted code's embedded chunk index.
#include <dlfcn.h>
#include <gtest/gtest.h>

#include <cmath>

#include "codegen/emit.h"
#include "codegen/plan.h"
#include "common/string_util.h"
#include "common/tempdir.h"
#include "dataset/ipars.h"
#include "dataset/titan.h"
#include "index/minmax.h"

namespace adv::codegen {
namespace {

TEST(ParallelExecuteTest, SameRowsAsSerial) {
  dataset::IparsConfig cfg;
  cfg.nodes = 2;
  cfg.rels = 2;
  cfg.timesteps = 10;
  cfg.grid_per_node = 20;
  cfg.pad_vars = 1;
  TempDir tmp("par");
  auto gen = dataset::generate_ipars(cfg, dataset::IparsLayout::kII, tmp.str());
  DataServicePlan plan = DataServicePlan::from_text(
      gen.descriptor_text, gen.dataset_name, gen.root);
  expr::BoundQuery q =
      plan.bind("SELECT * FROM IparsData WHERE SOIL > 0.3 AND TIME <= 8");

  ExtractStats serial_stats, par_stats;
  expr::Table serial = plan.execute(q, {}, &serial_stats);
  for (int threads : {1, 2, 4, 7}) {
    expr::Table par = plan.execute_parallel(q, threads, {}, &par_stats);
    EXPECT_TRUE(par.same_rows(serial)) << threads << " threads";
    EXPECT_EQ(par_stats.rows_matched, serial_stats.rows_matched);
    EXPECT_EQ(par_stats.bytes_read, serial_stats.bytes_read);
  }
  EXPECT_THROW(plan.execute_parallel(q, 0), QueryError);
}

// ---------------------------------------------------------------------------
// Emitted code with an embedded chunk index.

struct Collector {
  std::vector<std::vector<double>> rows;
  int ncols = 0;
  long long calls = 0;
};

extern "C" void ext_collect(void* ctx, const double* row) {
  auto* c = static_cast<Collector*>(ctx);
  c->rows.emplace_back(row, row + c->ncols);
}

using ScanFn = long long (*)(const char*, const double*, const double*,
                             void (*)(void*, const double*), void*);
using GroupScanFn = long long (*)(int, const char*, const double*,
                                  const double*,
                                  void (*)(void*, const double*), void*);

void* compile(const std::string& src, const TempDir& tmp,
              const std::string& tag) {
  std::string cpp = tmp.file(tag + ".cpp");
  std::string so = tmp.file("lib" + tag + ".so");
  write_text_file(cpp, src);
  std::string cmd =
      "g++ -std=c++17 -O1 -shared -fPIC -o " + so + " " + cpp + " 2>&1";
  int rc = std::system(cmd.c_str());
  EXPECT_EQ(rc, 0);
  void* h = ::dlopen(so.c_str(), RTLD_NOW);
  EXPECT_NE(h, nullptr) << ::dlerror();
  return h;
}

TEST(EmitBoundsTest, EmbeddedIndexPrunesAndStaysCorrect) {
  dataset::TitanConfig cfg;
  cfg.nodes = 2;
  cfg.cells_x = 4;
  cfg.cells_y = 4;
  cfg.cells_z = 2;
  cfg.points_per_chunk = 32;
  TempDir tmp("emitb");
  auto gen = dataset::generate_titan(cfg, tmp.str());
  DataServicePlan plan = DataServicePlan::from_text(
      gen.descriptor_text, gen.dataset_name, gen.root);
  index::MinMaxIndex idx = index::MinMaxIndex::build(plan);

  std::string with_idx = emit_cpp(plan.model(), &idx);
  std::string without_idx = emit_cpp(plan.model());
  EXPECT_NE(with_idx.find("kChunkBounds"), std::string::npos);
  EXPECT_EQ(without_idx.find("kChunkBounds"), std::string::npos);

  void* h1 = compile(with_idx, tmp, "withidx");
  void* h2 = compile(without_idx, tmp, "noidx");
  ASSERT_NE(h1, nullptr);
  ASSERT_NE(h2, nullptr);
  auto scan1 = reinterpret_cast<ScanFn>(::dlsym(h1, "advgen_scan"));
  auto scan2 = reinterpret_cast<ScanFn>(::dlsym(h2, "advgen_scan"));
  ASSERT_NE(scan1, nullptr);
  ASSERT_NE(scan2, nullptr);

  // Selective box: only a corner of the extent.
  std::vector<double> lo(8, -HUGE_VAL), hi(8, HUGE_VAL);
  lo[0] = 0;
  hi[0] = cfg.extent_x / 4 - 1;
  lo[1] = 0;
  hi[1] = cfg.extent_y / 4 - 1;

  Collector c1, c2;
  c1.ncols = c2.ncols = 8;
  long long n1 = scan1(gen.root.c_str(), lo.data(), hi.data(), ext_collect,
                       &c1);
  long long n2 = scan2(gen.root.c_str(), lo.data(), hi.data(), ext_collect,
                       &c2);
  ASSERT_GE(n1, 0);
  ASSERT_GE(n2, 0);
  EXPECT_EQ(n1, n2);  // identical rows with and without the index
  EXPECT_GT(n1, 0);
  // And both match the interpreted engine.
  expr::Table want = plan.execute(format(
      "SELECT * FROM TitanData WHERE X >= 0 AND X <= %f AND Y >= 0 AND Y "
      "<= %f",
      hi[0], hi[1]));
  EXPECT_EQ(static_cast<std::size_t>(n1), want.num_rows());

  // Per-group entry points expose node placement.
  auto num_groups =
      reinterpret_cast<int (*)()>(::dlsym(h1, "advgen_num_groups"));
  auto group_node =
      reinterpret_cast<int (*)(int)>(::dlsym(h1, "advgen_group_node"));
  auto scan_group =
      reinterpret_cast<GroupScanFn>(::dlsym(h1, "advgen_scan_group"));
  ASSERT_NE(num_groups, nullptr);
  ASSERT_NE(group_node, nullptr);
  ASSERT_NE(scan_group, nullptr);
  EXPECT_EQ(num_groups(), 2);  // one group per node file
  EXPECT_EQ(group_node(0), 0);
  EXPECT_EQ(group_node(1), 1);
  EXPECT_EQ(group_node(99), -1);
  // Scanning groups individually sums to the full scan.
  Collector cg;
  cg.ncols = 8;
  long long total = 0;
  for (int g = 0; g < num_groups(); ++g) {
    long long r = scan_group(g, gen.root.c_str(), lo.data(), hi.data(),
                             ext_collect, &cg);
    ASSERT_GE(r, 0);
    total += r;
  }
  EXPECT_EQ(total, n1);
  EXPECT_EQ(scan_group(99, gen.root.c_str(), lo.data(), hi.data(),
                       ext_collect, &cg),
            -1);

  ::dlclose(h1);
  ::dlclose(h2);
}

TEST(EmitBoundsTest, IparsEmbeddedTimeBounds) {
  // IPARS: DATAINDEX is REL/TIME (implicit attributes); the embedded table
  // should still be consistent — each chunk's TIME bound equals its step.
  dataset::IparsConfig cfg;
  cfg.nodes = 1;
  cfg.rels = 1;
  cfg.timesteps = 4;
  cfg.grid_per_node = 6;
  cfg.pad_vars = 0;
  TempDir tmp("emitb2");
  auto gen = dataset::generate_ipars(cfg, dataset::IparsLayout::kI, tmp.str());
  DataServicePlan plan = DataServicePlan::from_text(
      gen.descriptor_text, gen.dataset_name, gen.root);
  index::MinMaxIndex idx = index::MinMaxIndex::build(plan);
  std::string src = emit_cpp(plan.model(), &idx);
  void* h = compile(src, tmp, "ipars_bounds");
  ASSERT_NE(h, nullptr);
  auto scan = reinterpret_cast<ScanFn>(::dlsym(h, "advgen_scan"));
  std::vector<double> lo(static_cast<std::size_t>(cfg.num_attrs()),
                         -HUGE_VAL);
  std::vector<double> hi(static_cast<std::size_t>(cfg.num_attrs()),
                         HUGE_VAL);
  lo[1] = 2;
  hi[1] = 3;  // TIME in [2,3]
  Collector c;
  c.ncols = cfg.num_attrs();
  long long n = scan(gen.root.c_str(), lo.data(), hi.data(), ext_collect, &c);
  EXPECT_EQ(n, 2 * 6);  // two time steps x six grid points
  ::dlclose(h);
}

}  // namespace
}  // namespace adv::codegen
