// Tests for the SQL-subset parser.
#include <gtest/gtest.h>

#include "common/error.h"
#include "sql/ast.h"

namespace adv::sql {
namespace {

TEST(SqlParserTest, SelectStarNoWhere) {
  SelectQuery q = parse_select("SELECT * FROM TITAN");
  EXPECT_TRUE(q.select_all());
  EXPECT_EQ(q.table, "TITAN");
  EXPECT_EQ(q.where, nullptr);
}

TEST(SqlParserTest, SelectListAndSemicolon) {
  SelectQuery q = parse_select("select X, Y, S1 from Titan;");
  ASSERT_EQ(q.select_attrs.size(), 3u);
  EXPECT_EQ(q.select_attrs[0], "X");
  EXPECT_EQ(q.select_attrs[2], "S1");
  EXPECT_EQ(q.table, "Titan");
}

TEST(SqlParserTest, PaperExampleQueryParses) {
  // The IPARS example from Figure 1 (RID spelled REL per the schema).
  SelectQuery q = parse_select(
      "SELECT * FROM IparsData WHERE REL in (0,6,26,27) AND TIME >= 1000 "
      "AND TIME <= 1100 AND SOIL >= 0.7 AND SPEED(OILVX, OILVY, OILVZ) <= "
      "30.0;");
  ASSERT_NE(q.where, nullptr);
  // Top of the tree is the last AND.
  EXPECT_EQ(q.where->kind, BoolExpr::Kind::kAnd);
  std::string s = q.where->to_string();
  EXPECT_NE(s.find("REL IN (0, 6, 26, 27)"), std::string::npos);
  EXPECT_NE(s.find("SPEED(OILVX, OILVY, OILVZ) <= 30"), std::string::npos);
}

TEST(SqlParserTest, ComparisonOperators) {
  auto op_of = [](const std::string& text) {
    SelectQuery q = parse_select("SELECT * FROM T WHERE A " + text + " 1");
    return q.where->cmp;
  };
  EXPECT_EQ(op_of("<"), CmpOp::kLt);
  EXPECT_EQ(op_of("<="), CmpOp::kLe);
  EXPECT_EQ(op_of(">"), CmpOp::kGt);
  EXPECT_EQ(op_of(">="), CmpOp::kGe);
  EXPECT_EQ(op_of("="), CmpOp::kEq);
  EXPECT_EQ(op_of("=="), CmpOp::kEq);
  EXPECT_EQ(op_of("<>"), CmpOp::kNe);
  EXPECT_EQ(op_of("!="), CmpOp::kNe);
}

TEST(SqlParserTest, LiteralOnLeftSide) {
  SelectQuery q = parse_select("SELECT * FROM T WHERE 5 < A");
  EXPECT_EQ(q.where->kind, BoolExpr::Kind::kCmp);
  EXPECT_EQ(q.where->lhs->kind, Scalar::Kind::kLiteral);
  EXPECT_EQ(q.where->rhs->kind, Scalar::Kind::kAttr);
}

TEST(SqlParserTest, BetweenExpandsToRange) {
  SelectQuery q = parse_select("SELECT * FROM T WHERE A BETWEEN 2 AND 7");
  ASSERT_EQ(q.where->kind, BoolExpr::Kind::kAnd);
  EXPECT_EQ(q.where->a->cmp, CmpOp::kGe);
  EXPECT_EQ(q.where->b->cmp, CmpOp::kLe);
}

TEST(SqlParserTest, NegativeLiterals) {
  SelectQuery q = parse_select("SELECT * FROM T WHERE A IN (-3, 5) AND B > -1.5");
  EXPECT_EQ(q.where->a->in_values[0].as_int(), -3);
  EXPECT_DOUBLE_EQ(q.where->b->rhs->literal.as_double(), -1.5);
}

TEST(SqlParserTest, OrAndPrecedence) {
  // AND binds tighter than OR.
  SelectQuery q =
      parse_select("SELECT * FROM T WHERE A < 1 OR B < 2 AND C < 3");
  ASSERT_EQ(q.where->kind, BoolExpr::Kind::kOr);
  EXPECT_EQ(q.where->b->kind, BoolExpr::Kind::kAnd);
}

TEST(SqlParserTest, ParenthesizedBooleanBacktracks) {
  SelectQuery q =
      parse_select("SELECT * FROM T WHERE (A < 1 OR B < 2) AND C < 3");
  ASSERT_EQ(q.where->kind, BoolExpr::Kind::kAnd);
  EXPECT_EQ(q.where->a->kind, BoolExpr::Kind::kOr);
}

TEST(SqlParserTest, ParenthesizedScalarStillWorks) {
  SelectQuery q = parse_select("SELECT * FROM T WHERE (A + B) * 2 > 10");
  ASSERT_EQ(q.where->kind, BoolExpr::Kind::kCmp);
  EXPECT_EQ(q.where->lhs->kind, Scalar::Kind::kArith);
}

TEST(SqlParserTest, NotOperator) {
  SelectQuery q = parse_select("SELECT * FROM T WHERE NOT A > 5");
  EXPECT_EQ(q.where->kind, BoolExpr::Kind::kNot);
}

TEST(SqlParserTest, FunctionCalls) {
  SelectQuery q =
      parse_select("SELECT * FROM T WHERE DISTANCE(X, Y, Z) < 1000");
  EXPECT_EQ(q.where->lhs->kind, Scalar::Kind::kCall);
  EXPECT_EQ(q.where->lhs->name, "DISTANCE");
  EXPECT_EQ(q.where->lhs->args.size(), 3u);
}

TEST(SqlParserTest, RoundTripToString) {
  const char* text =
      "SELECT X, Y FROM T WHERE X >= 0 AND X <= 10 AND S1 < 0.5";
  SelectQuery q1 = parse_select(text);
  SelectQuery q2 = parse_select(q1.to_string());
  EXPECT_EQ(q1.to_string(), q2.to_string());
}

TEST(SqlParserTest, MultiTableFromWithAliases) {
  SelectQuery q = parse_select(
      "SELECT I.TIME, SOIL, T.S1 FROM IparsData I, TitanST T "
      "WHERE I.TIME = T.TIME AND I.SOIL >= 0.9 AND T.LAT <= 2");
  EXPECT_TRUE(q.is_join());
  ASSERT_EQ(q.tables.size(), 2u);
  EXPECT_EQ(q.tables[0].table, "IparsData");
  EXPECT_EQ(q.tables[0].alias, "I");
  EXPECT_EQ(q.tables[1].table, "TitanST");
  EXPECT_EQ(q.tables[1].alias, "T");
  EXPECT_EQ(q.table, "IparsData");  // legacy field tracks the first entry
  ASSERT_EQ(q.select_attrs.size(), 3u);
  EXPECT_EQ(q.select_attrs[0], "I.TIME");
  EXPECT_EQ(q.select_attrs[1], "SOIL");
  EXPECT_EQ(q.select_attrs[2], "T.S1");
  std::string s = q.where->to_string();
  EXPECT_NE(s.find("I.TIME = T.TIME"), std::string::npos);
  // Round-trip: aliases and qualified names survive to_string -> parse.
  SelectQuery r = parse_select(q.to_string());
  EXPECT_EQ(r.to_string(), q.to_string());
  ASSERT_EQ(r.tables.size(), 2u);
  EXPECT_EQ(r.tables[1].alias, "T");
}

TEST(SqlParserTest, AliasDefaultsToTableName) {
  SelectQuery q = parse_select("SELECT * FROM A, B WHERE A.K = B.K");
  ASSERT_EQ(q.tables.size(), 2u);
  EXPECT_EQ(q.tables[0].alias, "A");
  EXPECT_EQ(q.tables[1].alias, "B");
  // Single table stays a non-join with the alias recorded.
  SelectQuery s = parse_select("SELECT * FROM IparsData I WHERE I.TIME = 3");
  EXPECT_FALSE(s.is_join());
  EXPECT_EQ(s.tables[0].alias, "I");
}

TEST(SqlParserTest, QualifiedAttrsInScalarsAndIn) {
  SelectQuery q = parse_select(
      "SELECT * FROM A x, B y WHERE x.K = y.K AND x.P + 1 < 2 "
      "AND y.REL IN (0, 2)");
  std::string s = q.where->to_string();
  EXPECT_NE(s.find("(x.P + 1) < 2"), std::string::npos);
  EXPECT_NE(s.find("y.REL IN (0, 2)"), std::string::npos);
}

TEST(SqlParserTest, Errors) {
  EXPECT_THROW(parse_select("FROM T"), ParseError);
  EXPECT_THROW(parse_select("SELECT * FROM"), ParseError);
  EXPECT_THROW(parse_select("SELECT * FROM T WHERE"), ParseError);
  EXPECT_THROW(parse_select("SELECT * FROM T WHERE A >"), ParseError);
  EXPECT_THROW(parse_select("SELECT * FROM T WHERE A ! 3"), ParseError);
  // `FROM T extra` is an alias now; a second trailing ident is still junk.
  EXPECT_THROW(parse_select("SELECT * FROM T alias extra"), ParseError);
  EXPECT_THROW(parse_select("SELECT * FROM T1, "), ParseError);
  EXPECT_THROW(parse_select("SELECT A. FROM T"), ParseError);
  EXPECT_THROW(parse_select("SELECT * FROM T WHERE I.WHERE = 1"), ParseError);
  EXPECT_THROW(parse_select("SELECT * FROM T WHERE 3 IN (1,2)"), ParseError);
  EXPECT_THROW(parse_select("SELECT * FROM T WHERE A IN ()"), ParseError);
  EXPECT_THROW(parse_select("SELECT FROM T"), ParseError);
}

}  // namespace
}  // namespace adv::sql
