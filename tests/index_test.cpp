// Tests for the indexing service: min/max chunk index (build, persistence,
// pruning) and the packed R-tree (+ RTreeFilter equivalence).
#include <gtest/gtest.h>

#include "codegen/plan.h"
#include "common/rng.h"
#include "common/tempdir.h"
#include "dataset/titan.h"
#include "index/minmax.h"
#include "index/rtree.h"
#include "index/spatial_filter.h"

namespace adv::index {
namespace {

dataset::TitanConfig titan_cfg() {
  dataset::TitanConfig cfg;
  cfg.nodes = 2;
  cfg.cells_x = 4;
  cfg.cells_y = 4;
  cfg.cells_z = 2;
  cfg.points_per_chunk = 32;
  return cfg;
}

struct TitanFixture {
  TempDir tmp{"idx"};
  dataset::GeneratedTitan gen;
  codegen::DataServicePlan plan;

  TitanFixture()
      : gen(dataset::generate_titan(titan_cfg(), tmp.str())),
        plan(codegen::DataServicePlan::from_text(gen.descriptor_text,
                                                 gen.dataset_name,
                                                 gen.root)) {}
};

TEST(MinMaxIndexTest, BuildCoversEveryChunk) {
  TitanFixture f;
  MinMaxIndex idx = MinMaxIndex::build(f.plan);
  EXPECT_EQ(idx.attrs().size(), 3u);  // DATAINDEX { X Y Z }
  EXPECT_EQ(idx.num_chunks(),
            static_cast<std::size_t>(titan_cfg().num_chunks()));
  // Each chunk's recorded bounds sit inside its generator cell.
  int checked = 0;
  for (const auto& [key, b] : idx.entries()) {
    (void)key;
    for (std::size_t a = 0; a < 3; ++a) {
      EXPECT_LE(b.bounds[a].first, b.bounds[a].second);
    }
    ++checked;
  }
  EXPECT_EQ(checked, titan_cfg().num_chunks());
}

TEST(MinMaxIndexTest, SaveLoadRoundTrip) {
  TitanFixture f;
  MinMaxIndex idx = MinMaxIndex::build(f.plan);
  std::string path = f.tmp.file("titan.advidx");
  idx.save(path);
  MinMaxIndex loaded = MinMaxIndex::load(path);
  EXPECT_EQ(loaded.attrs(), idx.attrs());
  EXPECT_EQ(loaded.num_chunks(), idx.num_chunks());
  for (const auto& [key, b] : idx.entries()) {
    const ChunkBounds* lb = loaded.find(key);
    ASSERT_NE(lb, nullptr);
    EXPECT_EQ(lb->bounds, b.bounds);
  }
  EXPECT_THROW(MinMaxIndex::load(f.gen.root + "/node0/titan/CHUNKS"),
               IoError);
}

TEST(MinMaxIndexTest, PruningPreservesResultsAndSkipsChunks) {
  TitanFixture f;
  MinMaxIndex idx = MinMaxIndex::build(f.plan);
  const char* query =
      "SELECT * FROM TitanData WHERE X >= 0 AND X <= 9000 AND Y >= 0 AND "
      "Y <= 9000 AND Z >= 0 AND Z <= 200";
  expr::BoundQuery q = f.plan.bind(query);

  afc::PlannerOptions with, without;
  with.filter = &idx;
  afc::PlanResult pruned = f.plan.index_fn(q, with);
  afc::PlanResult full = f.plan.index_fn(q, without);
  EXPECT_LT(pruned.afcs.size(), full.afcs.size());
  EXPECT_GT(pruned.stats.afcs_filtered_by_index, 0u);

  expr::Table a = f.plan.execute(q, with);
  expr::Table b = f.plan.execute(q, without);
  EXPECT_GT(a.num_rows(), 0u);
  EXPECT_TRUE(a.same_rows(b));
  // And both equal the oracle.
  EXPECT_TRUE(a.same_rows(dataset::titan_oracle(titan_cfg(), q)));
}

TEST(MinMaxIndexTest, UnindexedChunksPass) {
  MinMaxIndex idx({0});
  expr::QueryIntervals qi(1);
  qi.interval(0) = expr::Interval::closed(0, 1);
  EXPECT_TRUE(idx.may_match("nofile", 0, qi));
  idx.add({"f", 0}, {{{5.0, 9.0}}});
  EXPECT_FALSE(idx.may_match("f", 0, qi));
  qi.interval(0) = expr::Interval::closed(6, 7);
  EXPECT_TRUE(idx.may_match("f", 0, qi));
}

// ---------------------------------------------------------------------------
// R-tree

TEST(RTreeTest, EmptyTree) {
  RTree t = RTree::build({}, 2);
  std::vector<uint64_t> out;
  t.query(Box({0, 0}, {1, 1}), out);
  EXPECT_TRUE(out.empty());
}

TEST(RTreeTest, QueryMatchesBruteForce) {
  SplitMix64 rng(99);
  std::vector<RTree::Entry> entries;
  for (uint64_t i = 0; i < 500; ++i) {
    double x = rng.next_unit() * 100, y = rng.next_unit() * 100;
    double w = rng.next_unit() * 5, h = rng.next_unit() * 5;
    entries.push_back({Box({x, y}, {x + w, y + h}), i});
  }
  RTree t = RTree::build(entries, 2);
  EXPECT_EQ(t.size(), 500u);
  EXPECT_GE(t.height(), 2);

  for (int trial = 0; trial < 20; ++trial) {
    double qx = rng.next_unit() * 100, qy = rng.next_unit() * 100;
    Box q({qx, qy}, {qx + 10, qy + 10});
    std::vector<uint64_t> got;
    t.query(q, got);
    std::vector<uint64_t> want;
    for (const auto& e : entries)
      if (e.box.intersects(q)) want.push_back(e.payload);
    std::sort(got.begin(), got.end());
    std::sort(want.begin(), want.end());
    EXPECT_EQ(got, want) << "trial " << trial;
  }
}

TEST(RTreeTest, SelectiveQueryVisitsFewNodes) {
  std::vector<RTree::Entry> entries;
  // 1024 unit boxes on a 32x32 grid.
  for (uint64_t i = 0; i < 1024; ++i) {
    double x = static_cast<double>(i % 32) * 10;
    double y = static_cast<double>(i / 32) * 10;
    entries.push_back({Box({x, y}, {x + 1, y + 1}), i});
  }
  RTree t = RTree::build(entries, 2);
  std::vector<uint64_t> out;
  t.query(Box({0, 0}, {5, 5}), out);
  EXPECT_EQ(out.size(), 1u);
  // A point-ish query should visit far fewer nodes than the tree holds.
  EXPECT_LT(t.last_nodes_visited(), 30u);
}

TEST(RTreeFilterTest, EquivalentToMinMaxFilter) {
  TitanFixture f;
  MinMaxIndex idx = MinMaxIndex::build(f.plan);
  RTreeFilter rtf(idx);
  expr::BoundQuery q = f.plan.bind(
      "SELECT * FROM TitanData WHERE X <= 15000 AND Y >= 20000 AND Z < 400");

  afc::PlannerOptions mm_opts, rt_opts;
  mm_opts.filter = &idx;
  rt_opts.filter = &rtf;
  afc::PlanResult mm = f.plan.index_fn(q, mm_opts);
  afc::PlanResult rt = f.plan.index_fn(q, rt_opts);
  EXPECT_EQ(mm.afcs.size(), rt.afcs.size());
  EXPECT_EQ(mm.stats.afcs_filtered_by_index, rt.stats.afcs_filtered_by_index);

  expr::Table a = f.plan.execute(q, mm_opts);
  expr::Table b = f.plan.execute(q, rt_opts);
  EXPECT_TRUE(a.same_rows(b));
}

}  // namespace
}  // namespace adv::index
