// Tests for the loop-nest region analysis (layout/region.h).
#include <gtest/gtest.h>

#include "common/error.h"
#include "layout/region.h"
#include "metadata/model.h"

namespace adv::layout {
namespace {

meta::Schema schema3() {
  meta::Schema s;
  s.name = "S";
  s.attrs = {{"TIME", DataType::kInt32},
             {"X", DataType::kFloat32},
             {"Y", DataType::kFloat32},
             {"SOIL", DataType::kFloat32},
             {"SGAS", DataType::kFloat32}};
  return s;
}

// Parses just a DATASPACE body for testing.
std::vector<meta::LayoutNode> parse_space(const std::string& body) {
  std::string text = "[S]\nTIME = int\nX = float\nY = float\nSOIL = float\n"
                     "SGAS = float\n[DS]\nDatasetDescription = S\n"
                     "DIR[0] = n0/d\n"
                     "DATASET \"DS\" { DATASPACE { " + body +
                     " } DATA { f DIRID = 0:0:1 } }";
  static std::vector<meta::Descriptor> keep_alive;
  keep_alive.push_back(meta::parse_descriptor(text));
  return keep_alive.back().datasets[0].dataspace;
}

TEST(RegionTest, SingleRecordLoop) {
  auto space = parse_space("LOOP GRID 1:100:1 { X Y }");
  meta::Schema s = schema3();
  meta::VarEnv env;
  auto regions = analyze_regions(space, s, {}, env);
  ASSERT_EQ(regions.size(), 1u);
  const Region& r = regions[0];
  EXPECT_TRUE(r.path.empty());
  EXPECT_EQ(r.record_ident, "GRID");
  EXPECT_EQ(r.record_range.count(), 100);
  EXPECT_EQ(r.record_bytes, 8u);
  EXPECT_EQ(r.base_offset, 0u);
  ASSERT_EQ(r.fields.size(), 2u);
  EXPECT_EQ(r.fields[0].attr, "X");
  EXPECT_EQ(r.fields[0].intra_offset, 0u);
  EXPECT_EQ(r.fields[1].intra_offset, 4u);
  EXPECT_EQ(r.num_rows(), 100u);
  EXPECT_EQ(r.chunk_bytes(), 800u);
  EXPECT_NE(r.find_field("Y"), nullptr);
  EXPECT_EQ(r.find_field("Z"), nullptr);
}

TEST(RegionTest, NestedStructureLoopStride) {
  // TIME { GRID { SOIL SGAS } }: one TIME iteration spans 100*8 bytes.
  auto space = parse_space("LOOP TIME 1:500:1 { LOOP GRID 1:100:1 { SOIL "
                           "SGAS } }");
  meta::Schema s = schema3();
  meta::VarEnv env;
  auto regions = analyze_regions(space, s, {}, env);
  ASSERT_EQ(regions.size(), 1u);
  const Region& r = regions[0];
  ASSERT_EQ(r.path.size(), 1u);
  EXPECT_EQ(r.path[0].ident, "TIME");
  EXPECT_EQ(r.path[0].range.count(), 500);
  EXPECT_EQ(r.path[0].stride, 800u);
  EXPECT_EQ(r.record_bytes, 8u);
}

TEST(RegionTest, SiblingArraysGetBaseOffsets) {
  // Per-variable arrays: SGAS array starts after the SOIL array.
  auto space = parse_space(
      "LOOP TIME 1:10:1 { LOOP GRID 1:100:1 { SOIL } LOOP GRID 1:100:1 { "
      "SGAS } }");
  meta::Schema s = schema3();
  meta::VarEnv env;
  auto regions = analyze_regions(space, s, {}, env);
  ASSERT_EQ(regions.size(), 2u);
  EXPECT_EQ(regions[0].base_offset, 0u);
  EXPECT_EQ(regions[0].record_bytes, 4u);
  EXPECT_EQ(regions[1].base_offset, 400u);
  // Both regions stride a full TIME iteration: 800 bytes.
  EXPECT_EQ(regions[0].path[0].stride, 800u);
  EXPECT_EQ(regions[1].path[0].stride, 800u);
}

TEST(RegionTest, EnvDependentBounds) {
  auto space =
      parse_space("LOOP GRID ($DIRID*100+1):(($DIRID+1)*100):1 { X Y }");
  meta::Schema s = schema3();
  meta::VarEnv env;
  env.set("DIRID", 2);
  auto regions = analyze_regions(space, s, {}, env);
  EXPECT_EQ(regions[0].record_range.lo, 201);
  EXPECT_EQ(regions[0].record_range.hi, 300);
}

TEST(RegionTest, MixedTypeRecordBytes) {
  // int32 TIME + two float32 = 12 bytes per record.
  auto space = parse_space("LOOP GRID 1:10:1 { TIME X Y }");
  meta::Schema s = schema3();
  meta::VarEnv env;
  auto regions = analyze_regions(space, s, {}, env);
  EXPECT_EQ(regions[0].record_bytes, 12u);
  EXPECT_EQ(regions[0].fields[1].intra_offset, 4u);
  EXPECT_EQ(regions[0].fields[2].intra_offset, 8u);
}

TEST(RegionTest, DataspaceBytes) {
  auto space = parse_space("LOOP TIME 1:500:1 { LOOP GRID 1:100:1 { SOIL "
                           "SGAS } }");
  meta::Schema s = schema3();
  meta::VarEnv env;
  EXPECT_EQ(dataspace_bytes(space, s, {}, env), 500u * 100u * 8u);
}

TEST(RegionTest, ThreeLevelNest) {
  auto space = parse_space(
      "LOOP TIME 1:5:1 { LOOP REL2 0:3:1 { LOOP GRID 1:10:1 { X } } }");
  meta::Schema s = schema3();
  meta::VarEnv env;
  auto regions = analyze_regions(space, s, {}, env);
  ASSERT_EQ(regions.size(), 1u);
  ASSERT_EQ(regions[0].path.size(), 2u);
  EXPECT_EQ(regions[0].path[0].ident, "TIME");
  EXPECT_EQ(regions[0].path[0].stride, 4u * 40u);  // 4 rels * 10 grid * 4B
  EXPECT_EQ(regions[0].path[1].ident, "REL2");
  EXPECT_EQ(regions[0].path[1].stride, 40u);
}

TEST(RegionTest, ColmajorLowersToOneRegionPerField) {
  // COLMAJOR record loop: X array then Y array, each its own region over
  // the shared record loop, single-field records.
  auto space = parse_space("LOOP GRID 1:100:1 COLMAJOR { TIME X Y }");
  meta::Schema s = schema3();
  meta::VarEnv env;
  auto regions = analyze_regions(space, s, {}, env);
  ASSERT_EQ(regions.size(), 3u);
  EXPECT_EQ(regions[0].fields[0].attr, "TIME");
  EXPECT_EQ(regions[0].base_offset, 0u);
  EXPECT_EQ(regions[0].record_bytes, 4u);
  EXPECT_EQ(regions[1].fields[0].attr, "X");
  EXPECT_EQ(regions[1].base_offset, 400u);
  EXPECT_EQ(regions[2].fields[0].attr, "Y");
  EXPECT_EQ(regions[2].base_offset, 800u);
  for (const auto& r : regions) {
    EXPECT_EQ(r.record_ident, "GRID");
    EXPECT_EQ(r.record_range.count(), 100);
    ASSERT_EQ(r.fields.size(), 1u);
    EXPECT_EQ(r.fields[0].intra_offset, 0u);
  }
  EXPECT_EQ(dataspace_bytes(space, s, {}, env), 100u * 12u);
}

TEST(RegionTest, ColmajorInsideStructureLoopStride) {
  // The enclosing TIME stride covers the whole column-major chunk.
  auto space = parse_space(
      "LOOP TIME 1:10:1 { LOOP GRID 1:50:1 COLMAJOR { SOIL SGAS } }");
  meta::Schema s = schema3();
  meta::VarEnv env;
  auto regions = analyze_regions(space, s, {}, env);
  ASSERT_EQ(regions.size(), 2u);
  EXPECT_EQ(regions[0].base_offset, 0u);
  EXPECT_EQ(regions[1].base_offset, 200u);
  EXPECT_EQ(regions[0].path[0].stride, 400u);
  EXPECT_EQ(regions[1].path[0].stride, 400u);
}

TEST(RegionTest, EvalRangeContains) {
  EvalRange r{1, 10, 3};  // 1,4,7,10
  EXPECT_TRUE(r.contains(1));
  EXPECT_TRUE(r.contains(7));
  EXPECT_FALSE(r.contains(8));
  EXPECT_FALSE(r.contains(0));
  EXPECT_FALSE(r.contains(13));
  EXPECT_EQ(r.count(), 4);
}

}  // namespace
}  // namespace adv::layout
