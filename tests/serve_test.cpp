// Tests for the serving layer (docs/SERVING.md §6): DataVersion change
// detection for in-place rewrites and zone-map sidecar rebuilds, the
// byte-budgeted LRU and single-flight behaviour of ResultCache in
// isolation, and the end-to-end serving path through QueryServer — cached
// hits bit-equal to uncached runs, version-keyed invalidation after file
// rewrites (including mid-query), kServeCache fault campaigns, typed
// tenant-quota rejections on the wire, and the kStats v2.2 serving tail.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/tempdir.h"
#include "dataset/ipars.h"
#include "faultz/faultz.h"
#include "serve/data_version.h"
#include "serve/result_cache.h"
#include "storm/net.h"
#include "zonemap/zonemap.h"

namespace adv::serve {
namespace {

using namespace std::chrono_literals;

// Rewrites one byte in the middle of `path` in place: same length, same
// inode, typically the same wall-clock second — only mtime_ns (and the
// content) change, which is exactly what DataVersion must catch.
void flip_byte_in_place(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr) << path;
  ASSERT_EQ(std::fseek(f, 0, SEEK_END), 0);
  long size = std::ftell(f);
  ASSERT_GT(size, 0);
  long off = size / 2;
  ASSERT_EQ(std::fseek(f, off, SEEK_SET), 0);
  int c = std::fgetc(f);
  ASSERT_NE(c, EOF);
  ASSERT_EQ(std::fseek(f, off, SEEK_SET), 0);
  ASSERT_NE(std::fputc((c ^ 0x2a) & 0xff, f), EOF);
  ASSERT_EQ(std::fclose(f), 0);
}

struct ServeFixture {
  TempDir tmp{"serve"};
  dataset::IparsConfig cfg;
  dataset::GeneratedIpars gen;
  std::shared_ptr<codegen::DataServicePlan> plan;

  static dataset::IparsConfig make_cfg() {
    dataset::IparsConfig c;
    c.nodes = 2;
    c.rels = 2;
    c.timesteps = 8;
    c.grid_per_node = 16;
    c.pad_vars = 0;
    return c;
  }

  ServeFixture()
      : cfg(make_cfg()),
        gen(dataset::generate_ipars(cfg, dataset::IparsLayout::kV,
                                    tmp.str())),
        plan(std::make_shared<codegen::DataServicePlan>(
            meta::parse_descriptor(gen.descriptor_text), gen.dataset_name,
            gen.root)) {}

  const std::string& any_data_file() const {
    const auto& files = plan->model().files();
    EXPECT_FALSE(files.empty());
    return files.front().full_path;
  }
};

// ---------------------------------------------------------------------------
// DataVersion

TEST(DataVersionTest, InPlaceSameSizeRewriteChangesVersion) {
  ServeFixture f;
  DataVersion before = DataVersion::compute(*f.plan);
  EXPECT_GT(before.files_seen, 0u);
  EXPECT_EQ(before.hex().size(), 16u);

  // Recomputing without touching anything is stable.
  EXPECT_EQ(DataVersion::compute(*f.plan).hex(), before.hex());

  flip_byte_in_place(f.any_data_file());
  DataVersion after = DataVersion::compute(*f.plan);
  // Same file count, same sizes, same second — the version still moves,
  // because FileId carries nanosecond mtimes.
  EXPECT_EQ(after.files_seen, before.files_seen);
  EXPECT_NE(after.hex(), before.hex());
}

TEST(DataVersionTest, SidecarRebuildChangesVersion) {
  ServeFixture f;
  const std::string dir = f.tmp.str() + "/zm";

  DataVersion absent = DataVersion::compute(*f.plan, dir);
  DataVersion plain = DataVersion::compute(*f.plan);
  // The sidecar-aware version folds in the (absent) sidecar triplet; the
  // plain one ignores it.
  EXPECT_NE(absent.hex(), plain.hex());

  zonemap::ZoneMap zm = zonemap::ZoneMap::build(*f.plan);
  zm.save(dir, *f.plan);
  DataVersion built = DataVersion::compute(*f.plan, dir);
  EXPECT_NE(built.hex(), absent.hex());
  EXPECT_GT(built.files_seen, absent.files_seen);

  // Rebuilding in place (same sizes possible, new mtimes) moves it again…
  std::this_thread::sleep_for(10ms);
  zm.save(dir, *f.plan);
  EXPECT_NE(DataVersion::compute(*f.plan, dir).hex(), built.hex());
  // …while the sidecar-blind version never noticed any of this.
  EXPECT_EQ(DataVersion::compute(*f.plan).hex(), plain.hex());
}

// ---------------------------------------------------------------------------
// ResultCache in isolation

ResultEntryPtr make_entry(std::size_t blob_bytes) {
  auto e = std::make_shared<ResultEntry>();
  e->replay_blob.assign(blob_bytes, 0x5a);
  return e;
}

TEST(ResultCacheTest, LruEvictsByByteBudget) {
  ResultCache::Options opts;
  opts.capacity_bytes = 3 * make_entry(1000)->charged_bytes() + 64;
  opts.max_entry_bytes = opts.capacity_bytes;
  ResultCache cache(opts);

  cache.insert("k1", make_entry(1000));
  cache.insert("k2", make_entry(1000));
  cache.insert("k3", make_entry(1000));
  ASSERT_EQ(cache.stats().entries, 3u);
  ASSERT_EQ(cache.stats().evictions, 0u);

  // Touch k1 so k2 becomes the least recently used…
  EXPECT_NE(cache.lookup("k1").entry, nullptr);
  // …then push past the budget: exactly one eviction, and it takes k2.
  cache.insert("k4", make_entry(1000));
  ResultCache::Stats st = cache.stats();
  EXPECT_EQ(st.entries, 3u);
  EXPECT_EQ(st.evictions, 1u);
  EXPECT_LE(st.bytes, opts.capacity_bytes);

  EXPECT_NE(cache.lookup("k1").entry, nullptr);
  EXPECT_NE(cache.lookup("k3").entry, nullptr);
  EXPECT_NE(cache.lookup("k4").entry, nullptr);
  ResultCache::Lookup gone = cache.lookup("k2");
  EXPECT_EQ(gone.entry, nullptr);
  EXPECT_TRUE(gone.leader);
  cache.publish(gone.flight, nullptr);  // close out the miss's flight
}

TEST(ResultCacheTest, OversizeEntriesAreNeverStored) {
  ResultCache::Options opts;
  opts.capacity_bytes = 1 << 20;
  opts.max_entry_bytes = 512;
  ResultCache cache(opts);
  cache.insert("big", make_entry(4096));
  ResultCache::Stats st = cache.stats();
  EXPECT_EQ(st.entries, 0u);
  EXPECT_EQ(st.too_large, 1u);
}

TEST(ResultCacheTest, SingleFlightCoalescesConcurrentMisses) {
  ResultCache cache;
  ResultCache::Lookup leader = cache.lookup("q");
  ASSERT_EQ(leader.entry, nullptr);
  ASSERT_TRUE(leader.leader);
  ASSERT_NE(leader.flight, nullptr);

  constexpr int kFollowers = 4;
  std::vector<std::thread> threads;
  std::vector<ResultEntryPtr> got(kFollowers);
  for (int i = 0; i < kFollowers; ++i) {
    threads.emplace_back([&, i] {
      ResultCache::Lookup fl = cache.lookup("q");
      EXPECT_FALSE(fl.leader);
      ASSERT_NE(fl.flight, nullptr);
      got[i] = cache.wait(fl.flight);
    });
  }
  std::this_thread::sleep_for(20ms);
  ResultEntryPtr entry = make_entry(64);
  cache.publish(leader.flight, entry);
  for (auto& t : threads) t.join();

  for (const auto& e : got) EXPECT_EQ(e, entry);
  ResultCache::Stats st = cache.stats();
  EXPECT_EQ(st.coalesced, kFollowers);
  EXPECT_EQ(st.misses, 1u);  // one leader execution for five lookups
  EXPECT_EQ(st.inserts, 1u);
  // The published entry is now served straight from the cache.
  EXPECT_EQ(cache.lookup("q").entry, entry);
}

TEST(ResultCacheTest, FailedLeaderWakesFollowersWithNull) {
  ResultCache cache;
  ResultCache::Lookup leader = cache.lookup("q");
  ASSERT_TRUE(leader.leader);
  ResultCache::Lookup follower = cache.lookup("q");
  ASSERT_FALSE(follower.leader);

  std::thread t([&] { cache.publish(leader.flight, nullptr); });
  ResultEntryPtr e = cache.wait(follower.flight);
  t.join();
  EXPECT_EQ(e, nullptr);  // follower falls back to executing itself
  EXPECT_EQ(cache.stats().entries, 0u);
  // The key is retryable: the next miss elects a fresh leader.
  ResultCache::Lookup retry = cache.lookup("q");
  EXPECT_TRUE(retry.leader);
  cache.publish(retry.flight, nullptr);
}

// ---------------------------------------------------------------------------
// End-to-end through QueryServer

constexpr const char* kSql =
    "SELECT REL, TIME, SOIL FROM IparsData WHERE TIME <= 4 AND SOIL > 0.25";

storm::QueryServer make_caching_server(const ServeFixture& f,
                                       sched::SchedulerOptions sopts = {}) {
  ServeOptions vs;
  vs.enable_result_cache = true;
  return storm::QueryServer(f.plan, storm::ClusterOptions{}, 0, nullptr,
                            std::move(sopts), vs);
}

TEST(ServeE2ETest, CachedHitMatchesUncachedRun) {
  ServeFixture f;
  storm::QueryServer server = make_caching_server(f);
  storm::QueryClient client("127.0.0.1", server.port());

  storm::RemoteResult cold = client.execute(kSql);
  ASSERT_TRUE(cold.sched.serving_valid);
  EXPECT_FALSE(cold.sched.served_from_cache);

  storm::RemoteResult hot = client.execute(kSql);
  ASSERT_TRUE(hot.sched.serving_valid);
  EXPECT_TRUE(hot.sched.served_from_cache);

  // The cached frame is the same result, down to the node stats blob.
  EXPECT_TRUE(hot.merged().same_rows(cold.merged()));
  ASSERT_EQ(hot.node_stats.size(), cold.node_stats.size());
  EXPECT_EQ(hot.node_stats[0].rows_matched, cold.node_stats[0].rows_matched);

  ResultCache::Stats st = server.result_cache_stats();
  EXPECT_EQ(st.hits, 1u);
  EXPECT_EQ(st.misses, 1u);
  EXPECT_EQ(st.inserts, 1u);
  EXPECT_EQ(server.queries_served(), 2u);

  // A different partition spec is a different key: no stale cross-serve.
  storm::PartitionSpec part;
  part.policy = storm::PartitionSpec::Policy::kRoundRobin;
  part.num_consumers = 3;
  storm::RemoteResult split = client.execute(kSql, part);
  EXPECT_FALSE(split.sched.served_from_cache);
  ASSERT_EQ(split.partitions.size(), 3u);
  EXPECT_TRUE(split.merged().same_rows(cold.merged()));
}

TEST(ServeE2ETest, InPlaceRewriteInvalidatesCachedEntry) {
  ServeFixture f;
  storm::QueryServer cached = make_caching_server(f);
  // Anchor server with the cache off: always executes for real.
  storm::QueryServer anchor(f.plan);
  storm::QueryClient cclient("127.0.0.1", cached.port());
  storm::QueryClient aclient("127.0.0.1", anchor.port());

  storm::RemoteResult before = cclient.execute(kSql);
  ASSERT_TRUE(cclient.execute(kSql).sched.served_from_cache);
  std::string v_before = cached.data_version().hex();

  flip_byte_in_place(f.any_data_file());
  EXPECT_NE(cached.data_version().hex(), v_before);

  // The rewrite changed the version component of every key: the next
  // query misses and re-executes against the new bytes…
  storm::RemoteResult after = cclient.execute(kSql);
  EXPECT_FALSE(after.sched.served_from_cache);
  // …and matches an uncached server reading the same rewritten files.
  storm::RemoteResult want = aclient.execute(kSql);
  EXPECT_TRUE(after.merged().same_rows(want.merged()));
  (void)before;
}

TEST(ServeE2ETest, MidQueryRewriteNeverServesStale) {
  // Best-effort race: rewrite the data mid-query so the server's
  // post-execution version recheck fires.  Whatever the interleaving, the
  // invariant is deterministic — a query issued after the rewrite must
  // match a cache-less server, never a pre-rewrite cached frame.
  ServeFixture f;
  storm::QueryServer cached = make_caching_server(f);
  storm::QueryServer anchor(f.plan);
  storm::QueryClient cclient("127.0.0.1", cached.port());
  storm::QueryClient aclient("127.0.0.1", anchor.port());

  for (int round = 0; round < 4; ++round) {
    std::thread rewriter([&] {
      std::this_thread::sleep_for(std::chrono::microseconds(200 * round));
      flip_byte_in_place(f.any_data_file());
    });
    try {
      (void)cclient.execute(kSql);
    } catch (const QueryError&) {
      // A scan overlapping the rewrite may legitimately fail; the next
      // query must still be correct.
    }
    rewriter.join();

    storm::RemoteResult got = cclient.execute(kSql);
    storm::RemoteResult want = aclient.execute(kSql);
    ASSERT_TRUE(got.merged().same_rows(want.merged())) << "round " << round;
  }
}

TEST(ServeE2ETest, ServeCacheFaultCampaignStaysCorrect) {
  // serve.cache at p=1.0 drops every insert and poisons every would-be
  // hit: the cache contributes nothing, and every query must still come
  // back right.
  ServeFixture f;
  storm::QueryServer server = make_caching_server(f);
  storm::QueryClient client("127.0.0.1", server.port());

  storm::RemoteResult clean = client.execute(kSql);
  {
    faultz::ScopedFaultPlan fp(7, "serve.cache=1.0");
    for (int i = 0; i < 3; ++i) {
      storm::RemoteResult r = client.execute(kSql);
      EXPECT_TRUE(r.merged().same_rows(clean.merged())) << "query " << i;
    }
  }
  ResultCache::Stats st = server.result_cache_stats();
  EXPECT_GT(st.poisoned, 0u);
  // With the plan gone the very next pair behaves normally again.
  (void)client.execute(kSql);
  storm::RemoteResult hot = client.execute(kSql);
  EXPECT_TRUE(hot.sched.served_from_cache);
  EXPECT_TRUE(hot.merged().same_rows(clean.merged()));
}

TEST(ServeE2ETest, TenantQuotaSurfacesAsTypedError) {
  ServeFixture f;
  sched::SchedulerOptions sopts;
  sopts.max_concurrent_queries = 1;
  sopts.max_queue_depth = 16;
  sched::TenantOptions quota;
  quota.max_queued = 1;
  sopts.tenants["metered"] = quota;
  storm::QueryServer server = make_caching_server(f, sopts);

  std::atomic<int> quota_rejects{0};
  std::atomic<int> completed{0};
  constexpr int kClients = 8;
  std::vector<std::thread> clients;
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&] {
      storm::QueryClient c("127.0.0.1", server.port());
      storm::QueryOptions qopts;
      qopts.tenant = "metered";
      // Unique SQL per attempt so the result cache can't collapse the
      // burst into one execution.
      for (int attempt = 0; attempt < 25 && quota_rejects.load() == 0;
           ++attempt) {
        std::string sql = "SELECT REL, TIME, SOIL FROM IparsData WHERE TIME = " +
                          std::to_string(attempt % 8);
        try {
          (void)c.execute(sql, storm::PartitionSpec{}, qopts);
          completed.fetch_add(1);
        } catch (const storm::TenantQuotaError& e) {
          EXPECT_EQ(e.kind, sched::RejectKind::kTenantQuota);
          EXPECT_GT(e.retry_after_seconds, 0.0);
          quota_rejects.fetch_add(1);
        } catch (const storm::QueueFullError&) {
          // Global backlog rejection is possible too; keep hammering.
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  // With one run slot, a one-deep tenant queue, and eight concurrent
  // clients, some submission had to trip the quota.
  EXPECT_GT(quota_rejects.load(), 0);
  EXPECT_GT(completed.load(), 0);
  sched::SchedulerMetrics m = server.scheduler_metrics();
  EXPECT_GT(m.tenants.at("metered").rejected, 0u);
}

TEST(ServeE2ETest, StatsTailCarriesServingCountersEndToEnd) {
  ServeFixture f;
  storm::QueryServer server = make_caching_server(f);
  storm::QueryClient client("127.0.0.1", server.port());
  storm::QueryOptions qopts;
  qopts.tenant = "acme";

  (void)client.execute(kSql, storm::PartitionSpec{}, qopts);
  storm::RemoteResult r = client.execute(kSql, storm::PartitionSpec{}, qopts);

  ASSERT_TRUE(r.sched.valid);
  ASSERT_TRUE(r.sched.serving_valid);
  EXPECT_TRUE(r.sched.served_from_cache);
  EXPECT_GE(r.sched.result_cache.lookups, 2u);
  EXPECT_GE(r.sched.result_cache.hits, 1u);
  EXPECT_GE(r.sched.plan_cache.misses + r.sched.plan_cache.hits, 1u);
  EXPECT_GE(r.sched.run_time_hist.count, 1u);
  EXPECT_GE(r.sched.queue_wait_hist.count, 0u);

  ASSERT_TRUE(r.sched.tenants.count("acme"));
  const auto& t = r.sched.tenants.at("acme");
  EXPECT_GE(t.submitted, 2u);
  EXPECT_GE(t.completed, 1u);
  EXPECT_DOUBLE_EQ(t.weight, 1.0);

  std::string pretty = r.sched.pretty();
  EXPECT_FALSE(pretty.empty());
  EXPECT_NE(pretty.find("acme"), std::string::npos);

  // A v1-style result (no tails parsed) prints nothing instead of junk.
  storm::SchedInfo blank;
  EXPECT_TRUE(blank.pretty().empty());
}

}  // namespace
}  // namespace adv::serve
