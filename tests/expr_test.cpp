// Tests for interval analysis, UDFs, predicate compilation, and Table.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "expr/interval.h"
#include "expr/predicate.h"
#include "expr/table.h"
#include "expr/udf.h"
#include "metadata/model.h"
#include "sql/ast.h"

namespace adv::expr {
namespace {

meta::Schema test_schema() {
  meta::Schema s;
  s.name = "T";
  s.attrs = {{"REL", DataType::kInt16},   {"TIME", DataType::kInt32},
             {"X", DataType::kFloat32},   {"Y", DataType::kFloat32},
             {"Z", DataType::kFloat32},   {"SOIL", DataType::kFloat32},
             {"VX", DataType::kFloat32},  {"VY", DataType::kFloat32},
             {"VZ", DataType::kFloat32}};
  return s;
}

BoundQuery bind(const std::string& sql_text) {
  static meta::Schema s = test_schema();
  return BoundQuery(sql::parse_select(sql_text), s);
}

// ---------------------------------------------------------------------------
// Interval

TEST(IntervalTest, BasicOps) {
  Interval a = Interval::closed(1, 5);
  EXPECT_TRUE(a.contains(1));
  EXPECT_TRUE(a.contains(5));
  EXPECT_FALSE(a.contains(5.01));
  EXPECT_TRUE(a.overlaps(4, 9));
  EXPECT_FALSE(a.overlaps(6, 9));
  EXPECT_TRUE(a.intersect(Interval::at_least(3)).contains(4));
  EXPECT_TRUE(a.intersect(Interval::at_least(6)).is_empty());
  Interval h = a.hull(Interval::closed(10, 12));
  EXPECT_TRUE(h.contains(7));
  EXPECT_TRUE(Interval::all().is_all());
}

// ---------------------------------------------------------------------------
// UDF registry

TEST(UdfTest, BuiltinsExist) {
  EXPECT_NE(UdfRegistry::find("SPEED"), nullptr);
  EXPECT_NE(UdfRegistry::find("speed"), nullptr);  // case-insensitive
  EXPECT_NE(UdfRegistry::find("DISTANCE"), nullptr);
  EXPECT_EQ(UdfRegistry::find("NO_SUCH_FN"), nullptr);
  double args[] = {3, 4, 0};
  EXPECT_DOUBLE_EQ(UdfRegistry::find("SPEED")->fn(args, 3), 5.0);
}

TEST(UdfTest, CustomRegistration) {
  UdfRegistry::register_udf("DOUBLE_IT", 1,
                            [](const double* a, std::size_t) { return 2 * a[0]; });
  const Udf* u = UdfRegistry::find("double_it");
  ASSERT_NE(u, nullptr);
  double x = 21;
  EXPECT_DOUBLE_EQ(u->fn(&x, 1), 42.0);
  EXPECT_THROW(UdfRegistry::register_udf("DOUBLE_IT", 2, u->fn), QueryError);
}

// ---------------------------------------------------------------------------
// BoundQuery: slots, selection, evaluation

TEST(BoundQueryTest, SelectStarNeedsAllAttrs) {
  BoundQuery q = bind("SELECT * FROM T");
  EXPECT_EQ(q.select_attrs().size(), 9u);
  EXPECT_EQ(q.needed_attrs().size(), 9u);
  EXPECT_FALSE(q.has_predicate());
  double row[9] = {};
  EXPECT_TRUE(q.matches(row));
}

TEST(BoundQueryTest, NeededIsSelectUnionPredicate) {
  BoundQuery q = bind("SELECT X FROM T WHERE TIME > 10");
  // Needed: TIME (index 1) and X (index 2).
  ASSERT_EQ(q.needed_attrs().size(), 2u);
  EXPECT_EQ(q.needed_attrs()[0], 1);
  EXPECT_EQ(q.needed_attrs()[1], 2);
  EXPECT_EQ(q.slot_of_attr(1), 0);
  EXPECT_EQ(q.slot_of_attr(2), 1);
  EXPECT_EQ(q.slot_of_attr(0), -1);
  ASSERT_EQ(q.select_slots().size(), 1u);
  EXPECT_EQ(q.select_slots()[0], 1);
}

TEST(BoundQueryTest, PredicateEvaluation) {
  BoundQuery q = bind("SELECT * FROM T WHERE TIME > 100 AND SOIL >= 0.7");
  // Slots are schema order: REL,TIME,X,Y,Z,SOIL,VX,VY,VZ.
  double row[9] = {0, 150, 0, 0, 0, 0.8, 0, 0, 0};
  EXPECT_TRUE(q.matches(row));
  row[1] = 100;
  EXPECT_FALSE(q.matches(row));
  row[1] = 150;
  row[5] = 0.5;
  EXPECT_FALSE(q.matches(row));
}

TEST(BoundQueryTest, UdfInPredicate) {
  BoundQuery q = bind("SELECT * FROM T WHERE SPEED(VX, VY, VZ) <= 5.0");
  double row[9] = {0, 0, 0, 0, 0, 0, 3, 4, 0};
  EXPECT_TRUE(q.matches(row));
  row[6] = 30;
  EXPECT_FALSE(q.matches(row));
}

TEST(BoundQueryTest, InListEvaluation) {
  BoundQuery q = bind("SELECT * FROM T WHERE REL IN (0, 6, 26, 27)");
  double row[9] = {6, 0, 0, 0, 0, 0, 0, 0, 0};
  EXPECT_TRUE(q.matches(row));
  row[0] = 7;
  EXPECT_FALSE(q.matches(row));
}

TEST(BoundQueryTest, OrNotEvaluation) {
  BoundQuery q = bind("SELECT * FROM T WHERE NOT (X < 0 OR X > 10)");
  double row[9] = {0, 0, 5, 0, 0, 0, 0, 0, 0};
  EXPECT_TRUE(q.matches(row));
  row[2] = -1;
  EXPECT_FALSE(q.matches(row));
  row[2] = 11;
  EXPECT_FALSE(q.matches(row));
}

TEST(BoundQueryTest, ArithmeticInPredicate) {
  BoundQuery q = bind("SELECT * FROM T WHERE (X + Y) * 2 > 10");
  double row[9] = {0, 0, 3, 3, 0, 0, 0, 0, 0};
  EXPECT_TRUE(q.matches(row));
  row[3] = 1;
  EXPECT_FALSE(q.matches(row));
}

TEST(BoundQueryTest, ErrorsOnUnknownNames) {
  EXPECT_THROW(bind("SELECT NOPE FROM T"), QueryError);
  EXPECT_THROW(bind("SELECT * FROM T WHERE NOPE > 1"), QueryError);
  EXPECT_THROW(bind("SELECT * FROM T WHERE NOFN(X) > 1"), QueryError);
  EXPECT_THROW(bind("SELECT * FROM T WHERE SPEED(X) > 1"), QueryError);
}

TEST(BoundQueryTest, ResultColumnsCarryTypes) {
  BoundQuery q = bind("SELECT TIME, X FROM T");
  auto cols = q.result_columns();
  ASSERT_EQ(cols.size(), 2u);
  EXPECT_EQ(cols[0].name, "TIME");
  EXPECT_EQ(cols[0].type, DataType::kInt32);
  EXPECT_EQ(cols[1].type, DataType::kFloat32);
}

// ---------------------------------------------------------------------------
// Interval extraction

TEST(IntervalExtractTest, ConjunctiveRanges) {
  BoundQuery q = bind(
      "SELECT * FROM T WHERE TIME > 1000 AND TIME < 1100 AND SOIL >= 0.7");
  const auto& qi = q.intervals();
  EXPECT_DOUBLE_EQ(qi.interval(1).lo, 1000);
  EXPECT_DOUBLE_EQ(qi.interval(1).hi, 1100);
  EXPECT_DOUBLE_EQ(qi.interval(5).lo, 0.7);
  EXPECT_TRUE(std::isinf(qi.interval(5).hi));
  EXPECT_TRUE(qi.interval(2).is_all());  // X unconstrained
}

TEST(IntervalExtractTest, LiteralOnLeftFlips) {
  BoundQuery q = bind("SELECT * FROM T WHERE 1000 < TIME AND 1100 >= TIME");
  EXPECT_DOUBLE_EQ(q.intervals().interval(1).lo, 1000);
  EXPECT_DOUBLE_EQ(q.intervals().interval(1).hi, 1100);
}

TEST(IntervalExtractTest, InSetRecorded) {
  BoundQuery q = bind("SELECT * FROM T WHERE REL IN (27, 0, 6)");
  const auto& qi = q.intervals();
  EXPECT_DOUBLE_EQ(qi.interval(0).lo, 0);
  EXPECT_DOUBLE_EQ(qi.interval(0).hi, 27);
  ASSERT_TRUE(qi.in_set(0).has_value());
  EXPECT_EQ(qi.in_set(0)->size(), 3u);
  EXPECT_TRUE(qi.value_may_match(0, 6));
  EXPECT_FALSE(qi.value_may_match(0, 7));
  EXPECT_TRUE(qi.chunk_may_match(0, 5, 10));    // contains 6
  EXPECT_FALSE(qi.chunk_may_match(0, 7, 20));   // no member in [7,20]
}

TEST(IntervalExtractTest, OrTakesHull) {
  BoundQuery q =
      bind("SELECT * FROM T WHERE (TIME < 10 OR TIME > 90) AND TIME > 0");
  // Hull of (-inf,10] and [90,inf) is everything; the AND adds lo=0.
  EXPECT_DOUBLE_EQ(q.intervals().interval(1).lo, 0);
  EXPECT_TRUE(std::isinf(q.intervals().interval(1).hi));
}

TEST(IntervalExtractTest, OrOfRangesOnSameAttr) {
  BoundQuery q = bind(
      "SELECT * FROM T WHERE (TIME > 10 AND TIME < 20) OR (TIME > 30 AND "
      "TIME < 40)");
  EXPECT_DOUBLE_EQ(q.intervals().interval(1).lo, 10);
  EXPECT_DOUBLE_EQ(q.intervals().interval(1).hi, 40);
}

TEST(IntervalExtractTest, EqualityGivesPoint) {
  BoundQuery q = bind("SELECT * FROM T WHERE REL = 3");
  EXPECT_DOUBLE_EQ(q.intervals().interval(0).lo, 3);
  EXPECT_DOUBLE_EQ(q.intervals().interval(0).hi, 3);
}

TEST(IntervalExtractTest, ContradictionDetected) {
  BoundQuery q = bind("SELECT * FROM T WHERE TIME > 10 AND TIME < 5");
  EXPECT_TRUE(q.intervals().contradictory());
}

TEST(IntervalExtractTest, ConstantFoldedComparand) {
  BoundQuery q = bind("SELECT * FROM T WHERE TIME <= 100 * 11");
  EXPECT_DOUBLE_EQ(q.intervals().interval(1).hi, 1100);
}

TEST(IntervalExtractTest, UdfComparisonGivesNoInterval) {
  BoundQuery q = bind("SELECT * FROM T WHERE SPEED(VX,VY,VZ) < 30");
  EXPECT_TRUE(q.intervals().interval(6).is_all());
}

// ---------------------------------------------------------------------------
// Table

TEST(TableTest, AppendAndAccess) {
  Table t({{"A", DataType::kInt32}, {"B", DataType::kFloat32}});
  double r1[] = {1, 2.5}, r2[] = {3, 4.5};
  t.append_row(r1);
  t.append_row(r2);
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_DOUBLE_EQ(t.at(1, 1), 4.5);
  EXPECT_EQ(t.payload_bytes(), 2u * 8u);
}

TEST(TableTest, SameRowsIgnoresOrder) {
  Table a({{"A", DataType::kInt32}}), b({{"A", DataType::kInt32}});
  double v;
  for (double x : {3.0, 1.0, 2.0}) { v = x; a.append_row(&v); }
  for (double x : {1.0, 2.0, 3.0}) { v = x; b.append_row(&v); }
  EXPECT_TRUE(a.same_rows(b));
  v = 9;
  b.append_row(&v);
  EXPECT_FALSE(a.same_rows(b));
}

TEST(TableTest, SameRowsWithTolerance) {
  Table a({{"A", DataType::kFloat32}}), b({{"A", DataType::kFloat32}});
  double x = 1.0, y = 1.0 + 1e-9;
  a.append_row(&x);
  b.append_row(&y);
  EXPECT_TRUE(a.same_rows(b, 1e-6));
  EXPECT_FALSE(a.same_rows(b, 1e-12));
}

TEST(TableTest, AppendTableMergesPartitions) {
  Table a({{"A", DataType::kInt32}}), b({{"A", DataType::kInt32}});
  double v = 1;
  a.append_row(&v);
  v = 2;
  b.append_row(&v);
  a.append_table(b);
  EXPECT_EQ(a.num_rows(), 2u);
}

TEST(TableTest, CsvOutput) {
  Table t({{"A", DataType::kInt32}, {"B", DataType::kFloat64}});
  double r[] = {7, 0.5};
  t.append_row(r);
  std::string csv = t.to_csv();
  EXPECT_NE(csv.find("A,B"), std::string::npos);
  EXPECT_NE(csv.find("7,0.5"), std::string::npos);
}

}  // namespace
}  // namespace adv::expr
