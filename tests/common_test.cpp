// Unit tests for the common substrate: typed values, binary I/O, the shared
// lexer, string helpers, the thread pool, and temp directories.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <set>

#include "common/env.h"
#include "common/error.h"
#include "common/io.h"
#include "common/lexer.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "common/tempdir.h"
#include "common/thread_pool.h"
#include "common/types.h"

namespace adv {
namespace {

// ---------------------------------------------------------------------------
// DataType / Value

TEST(DataTypeTest, SizesMatchWireFormat) {
  EXPECT_EQ(size_of(DataType::kInt8), 1u);
  EXPECT_EQ(size_of(DataType::kInt16), 2u);
  EXPECT_EQ(size_of(DataType::kInt32), 4u);
  EXPECT_EQ(size_of(DataType::kInt64), 8u);
  EXPECT_EQ(size_of(DataType::kFloat32), 4u);
  EXPECT_EQ(size_of(DataType::kFloat64), 8u);
}

TEST(DataTypeTest, ParseAcceptsCLikeSpellings) {
  EXPECT_EQ(parse_data_type("short int"), DataType::kInt16);
  EXPECT_EQ(parse_data_type("  SHORT   INT "), DataType::kInt16);
  EXPECT_EQ(parse_data_type("int"), DataType::kInt32);
  EXPECT_EQ(parse_data_type("char"), DataType::kInt8);
  EXPECT_EQ(parse_data_type("long"), DataType::kInt64);
  EXPECT_EQ(parse_data_type("float"), DataType::kFloat32);
  EXPECT_EQ(parse_data_type("double"), DataType::kFloat64);
  EXPECT_EQ(parse_data_type("float64"), DataType::kFloat64);
}

TEST(DataTypeTest, ParseRejectsUnknownNames) {
  EXPECT_THROW(parse_data_type("quadruple"), ValidationError);
  EXPECT_THROW(parse_data_type(""), ValidationError);
}

TEST(ValueTest, IntDoublePromotionInComparisons) {
  EXPECT_TRUE(Value(int64_t{3}) == Value(3.0));
  EXPECT_TRUE(Value(int64_t{3}) < Value(3.5));
  EXPECT_TRUE(Value(4.5) > Value(int64_t{4}));
  EXPECT_TRUE(Value(int64_t{-2}) <= Value(int64_t{-2}));
  EXPECT_TRUE(Value(1.0) != Value(int64_t{2}));
}

class ValueRoundTrip : public ::testing::TestWithParam<DataType> {};

TEST_P(ValueRoundTrip, EncodeDecodeIsIdentity) {
  DataType t = GetParam();
  unsigned char buf[8];
  if (is_integral(t)) {
    for (int64_t v : {int64_t{0}, int64_t{1}, int64_t{-1}, int64_t{100},
                      int64_t{-127}}) {
      encode_value(t, Value(v), buf);
      EXPECT_EQ(decode_value(t, buf).as_int(), v) << to_string(t);
    }
  } else {
    for (double v : {0.0, 1.5, -2.25, 1e10, -1e-3}) {
      encode_value(t, Value(v), buf);
      if (t == DataType::kFloat32) {
        EXPECT_FLOAT_EQ(static_cast<float>(decode_value(t, buf).as_double()),
                        static_cast<float>(v));
      } else {
        EXPECT_DOUBLE_EQ(decode_value(t, buf).as_double(), v);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllTypes, ValueRoundTrip,
                         ::testing::Values(DataType::kInt8, DataType::kInt16,
                                           DataType::kInt32, DataType::kInt64,
                                           DataType::kFloat32,
                                           DataType::kFloat64));

// ---------------------------------------------------------------------------
// File I/O

TEST(IoTest, WriteThenPreadRoundTrip) {
  TempDir tmp("io");
  std::string path = tmp.file("data.bin");
  {
    BufferedWriter w(path, 16);  // tiny buffer to force flushes
    for (uint32_t i = 0; i < 1000; ++i) w.write_pod(i);
    w.close();
  }
  FileHandle f(path);
  EXPECT_EQ(f.size(), 4000u);
  uint32_t v = 0;
  f.pread_exact(&v, 4, 4 * 123);
  EXPECT_EQ(v, 123u);
  f.pread_exact(&v, 4, 4 * 999);
  EXPECT_EQ(v, 999u);
}

TEST(IoTest, ShortReadThrows) {
  TempDir tmp("io");
  std::string path = tmp.file("small.bin");
  write_text_file(path, "abc");
  FileHandle f(path);
  char buf[16];
  EXPECT_THROW(f.pread_exact(buf, 16, 0), IoError);
  EXPECT_EQ(f.pread_some(buf, 16, 0), 3u);
  EXPECT_EQ(f.pread_some(buf, 16, 100), 0u);
}

TEST(IoTest, MissingFileThrows) {
  EXPECT_THROW(FileHandle("/nonexistent/path/xyz"), IoError);
  EXPECT_THROW(read_text_file("/nonexistent/path/xyz"), IoError);
  EXPECT_THROW(file_size("/nonexistent/path/xyz"), IoError);
  EXPECT_FALSE(file_exists("/nonexistent/path/xyz"));
}

TEST(IoTest, DirectoryBytesSumsRecursively) {
  TempDir tmp("io");
  write_text_file(tmp.file("a"), "12345");
  std::string sub = tmp.subdir("nested");
  write_text_file(sub + "/b", "123");
  EXPECT_EQ(directory_bytes(tmp.path()), 8u);
}

// ---------------------------------------------------------------------------
// FileCache staleness

TEST(FileCacheTest, HitsShareOneHandle) {
  TempDir tmp("fc");
  std::string path = tmp.file("d.bin");
  write_text_file(path, "0123456789");
  FileCache cache(8);
  auto a = cache.open(path, IoMode::kPread);
  auto b = cache.open(path, IoMode::kPread);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(cache.size(), 1u);
}

TEST(FileCacheTest, SameSizeSameSecondRewriteGetsFreshHandle) {
  TempDir tmp("fc");
  std::string path = tmp.file("d.bin");
  write_text_file(path, "old payload!");
  FileCache cache(8);
  auto stale = cache.open(path, IoMode::kMmap);
  FileHandle::FileId before = stale->id();

  // Rewrite in place: same path, same byte count, same wall-clock second.
  // Whole-second mtime cannot tell the versions apart — only the
  // nanosecond stamp (and on a rename-style rewrite, the inode) changes.
  write_text_file(path, "new payload!");
  EXPECT_NE(FileHandle::stat_id(path), before);

  auto fresh = cache.open(path, IoMode::kMmap);
  EXPECT_NE(fresh.get(), stale.get());
  char buf[12];
  fresh->pread_exact(buf, sizeof buf, 0);
  EXPECT_EQ(std::string(buf, sizeof buf), "new payload!");
}

TEST(FileCacheTest, DeletedFileIsEvictedOnNextOpen) {
  TempDir tmp("fc");
  std::string path = tmp.file("gone.bin");
  write_text_file(path, "x");
  FileCache cache(8);
  auto h = cache.open(path, IoMode::kPread);
  EXPECT_TRUE(h->is_open());
  std::filesystem::remove(path);
  // The revalidating stat fails -> the cached entry is dropped and the
  // reopen surfaces the real error instead of serving deleted bytes.
  EXPECT_THROW(cache.open(path, IoMode::kPread), IoError);
  EXPECT_EQ(cache.size(), 0u);
}

// ---------------------------------------------------------------------------
// Lexer

TEST(LexerTest, TokenKindsAndPositions) {
  auto toks = tokenize("LOOP GRID 1:100 { X }");
  ASSERT_EQ(toks.size(), 9u);  // 8 tokens + end
  EXPECT_TRUE(toks[0].is_ident("loop"));
  EXPECT_TRUE(toks[1].is_ident("GRID"));
  EXPECT_EQ(toks[2].kind, TokKind::kInt);
  EXPECT_EQ(toks[2].int_value, 1);
  EXPECT_TRUE(toks[3].is_punct(":"));
  EXPECT_EQ(toks[4].int_value, 100);
  EXPECT_EQ(toks[0].line, 1);
  EXPECT_EQ(toks[0].column, 1);
  EXPECT_EQ(toks[1].column, 6);
}

TEST(LexerTest, CommentsAreSkipped) {
  auto toks = tokenize("A // line comment\nB # hash\nC {* block *} D");
  ASSERT_EQ(toks.size(), 5u);
  EXPECT_TRUE(toks[0].is_ident("A"));
  EXPECT_TRUE(toks[1].is_ident("B"));
  EXPECT_TRUE(toks[2].is_ident("C"));
  EXPECT_TRUE(toks[3].is_ident("D"));
  EXPECT_EQ(toks[1].line, 2);
}

TEST(LexerTest, NumbersIntAndFloat) {
  auto toks = tokenize("42 3.25 1e3 0.5e-2 7");
  EXPECT_EQ(toks[0].kind, TokKind::kInt);
  EXPECT_EQ(toks[1].kind, TokKind::kFloat);
  EXPECT_DOUBLE_EQ(toks[1].float_value, 3.25);
  EXPECT_EQ(toks[2].kind, TokKind::kFloat);
  EXPECT_DOUBLE_EQ(toks[2].float_value, 1000.0);
  EXPECT_EQ(toks[3].kind, TokKind::kFloat);
  EXPECT_DOUBLE_EQ(toks[3].float_value, 0.005);
  EXPECT_EQ(toks[4].kind, TokKind::kInt);
}

TEST(LexerTest, MultiCharPunctuation) {
  auto toks = tokenize("a >= 1 AND b <= 2 OR c <> 3");
  EXPECT_TRUE(toks[1].is_punct(">="));
  EXPECT_TRUE(toks[5].is_punct("<="));
  EXPECT_TRUE(toks[9].is_punct("<>"));
}

TEST(LexerTest, StringsBothQuoteStyles) {
  auto toks = tokenize("\"hello\" 'world'");
  EXPECT_EQ(toks[0].kind, TokKind::kString);
  EXPECT_EQ(toks[0].text, "hello");
  EXPECT_EQ(toks[1].text, "world");
}

TEST(LexerTest, ErrorsCarryPosition) {
  try {
    tokenize("abc\n  \"unterminated");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 2);
    EXPECT_EQ(e.column(), 3);
  }
  EXPECT_THROW(tokenize("{* never closed"), ParseError);
  EXPECT_THROW(tokenize("valid ~ invalid"), ParseError);
}

TEST(TokenCursorTest, ExpectAndAccept) {
  TokenCursor cur(tokenize("SELECT * FROM t"));
  EXPECT_TRUE(cur.accept_ident("select"));
  EXPECT_TRUE(cur.accept_punct("*"));
  cur.expect_ident("FROM");
  EXPECT_EQ(cur.expect_any_ident("table name").text, "t");
  EXPECT_TRUE(cur.at_end());
  EXPECT_THROW(cur.expect_punct(";"), ParseError);
}

// ---------------------------------------------------------------------------
// Strings

TEST(StringUtilTest, Basics) {
  EXPECT_EQ(to_lower("AbC"), "abc");
  EXPECT_EQ(to_upper("AbC"), "ABC");
  EXPECT_TRUE(iequals("TiMe", "time"));
  EXPECT_FALSE(iequals("time", "times"));
  EXPECT_EQ(trim("  x \t"), "x");
  EXPECT_EQ(split("a,b,,c", ',').size(), 4u);
  EXPECT_EQ(join({"a", "b"}, "/"), "a/b");
  EXPECT_TRUE(starts_with("foobar", "foo"));
  EXPECT_TRUE(ends_with("foobar", "bar"));
  EXPECT_EQ(format("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(human_bytes(1536), "1.5 KB");
}

// ---------------------------------------------------------------------------
// Hash / RNG

TEST(RngTest, HashIsDeterministicAndSpread) {
  EXPECT_EQ(mix64(42), mix64(42));
  EXPECT_NE(mix64(42), mix64(43));
  double u = hash_unit(mix64(7));
  EXPECT_GE(u, 0.0);
  EXPECT_LT(u, 1.0);
  // Sequential stream hits distinct values.
  SplitMix64 rng(1);
  std::set<uint64_t> seen;
  for (int i = 0; i < 100; ++i) seen.insert(rng.next());
  EXPECT_EQ(seen.size(), 100u);
}

// ---------------------------------------------------------------------------
// ThreadPool

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<int> hits(1000, 0);
  pool.parallel_for(hits.size(), [&](std::size_t i) { hits[i]++; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPoolTest, ParallelForChunksHugeRanges) {
  // A million indices must not become a million queued tasks; every index
  // still runs exactly once and the sum is exact.
  ThreadPool pool(4);
  constexpr std::size_t kN = 1'000'000;
  std::atomic<uint64_t> sum{0};
  pool.parallel_for(kN, [&](std::size_t i) {
    sum.fetch_add(i, std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), kN * (kN - 1) / 2);
}

TEST(ThreadPoolTest, SubmitReturnsValue) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPoolTest, ExceptionsPropagate) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(8,
                        [&](std::size_t i) {
                          if (i == 3) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
}

// ---------------------------------------------------------------------------
// TempDir / env

TEST(TempDirTest, CreatesAndRemoves) {
  std::filesystem::path p;
  {
    TempDir tmp("t");
    p = tmp.path();
    EXPECT_TRUE(std::filesystem::exists(p));
    write_text_file(tmp.file("f"), "x");
  }
  EXPECT_FALSE(std::filesystem::exists(p));
}

TEST(TempDirTest, DistinctInstancesDistinctPaths) {
  TempDir a("t"), b("t");
  EXPECT_NE(a.path(), b.path());
}

TEST(EnvTest, IntParsingAndDefaults) {
  ::setenv("ADV_TEST_ENV_X", "123", 1);
  EXPECT_EQ(env_int("ADV_TEST_ENV_X", 5), 123);
  ::setenv("ADV_TEST_ENV_X", "abc", 1);
  EXPECT_EQ(env_int("ADV_TEST_ENV_X", 5), 5);
  ::unsetenv("ADV_TEST_ENV_X");
  EXPECT_EQ(env_int("ADV_TEST_ENV_X", 5), 5);
  EXPECT_EQ(env_str("ADV_TEST_ENV_X", "d"), "d");
}

}  // namespace
}  // namespace adv
