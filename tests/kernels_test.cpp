// Tests for the kernel engine tiers: BatchArena buffer reuse, mask-pass
// lowering (IN / BETWEEN / OR / NOT) against the per-row interpreter, the
// scalar UDF fallback inside batches, cross-tier row equivalence on a real
// dataset, the JIT module cache (memory hit / disk reload / compile), and
// graceful degradation to the vector tier when the compiler is missing or
// the jit.compile fault site fires.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "advirt.h"
#include "common/tempdir.h"
#include "dataset/layout_writer.h"
#include "faultz/faultz.h"
#include "kernels/batch.h"
#include "kernels/jit.h"

namespace adv {
namespace {

using expr::CompiledBool;
using expr::CompiledScalar;
using kernels::BatchArena;

// Sets an environment variable for one scope and restores the previous
// state on exit (tests flip ADV_JIT_CXX / ADV_JIT_CACHE_DIR).
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const std::string& value) : name_(name) {
    const char* old = ::getenv(name);
    had_ = old != nullptr;
    if (had_) old_ = old;
    ::setenv(name, value.c_str(), 1);
  }
  ~ScopedEnv() {
    if (had_)
      ::setenv(name_, old_.c_str(), 1);
    else
      ::unsetenv(name_);
  }
  ScopedEnv(const ScopedEnv&) = delete;
  ScopedEnv& operator=(const ScopedEnv&) = delete;

 private:
  const char* name_;
  bool had_ = false;
  std::string old_;
};

// ---------------------------------------------------------------------------
// BatchArena: grow-only buffers, scratch recycling without reallocation.

TEST(BatchArenaTest, ScratchBuffersAreReusedAcrossBatches) {
  BatchArena a;
  double* c1 = a.scratch_col(100);
  double* c2 = a.scratch_col(100);
  EXPECT_NE(c1, c2);
  uint8_t* m1 = a.scratch_mask(100);

  // Next batch: reset hands back the same backing stores in order, even for
  // smaller requests — a steady-state batch allocates nothing.
  a.reset_scratch();
  EXPECT_EQ(a.scratch_col(60), c1);
  EXPECT_EQ(a.scratch_col(100), c2);
  EXPECT_EQ(a.scratch_mask(40), m1);
}

TEST(BatchArenaTest, NamedBuffersNeverShrink) {
  BatchArena a;
  double* col = a.col(3, 256);
  uint8_t* mask = a.mask(256);
  uint32_t* sel = a.sel(256);
  uint64_t* seq = a.seq(256);
  double* out = a.out(1024);
  // Smaller and equal requests keep the same storage.
  EXPECT_EQ(a.col(3, 64), col);
  EXPECT_EQ(a.mask(256), mask);
  EXPECT_EQ(a.sel(1), sel);
  EXPECT_EQ(a.seq(100), seq);
  EXPECT_EQ(a.out(512), out);
  // A different slot is a different column.
  EXPECT_NE(a.col(0, 64), col);
}

// ---------------------------------------------------------------------------
// Mask lowering: every pass must agree bit-exactly with CompiledBool::eval.

CompiledScalar slot_ref(int s) {
  CompiledScalar x;
  x.kind = CompiledScalar::Kind::kSlot;
  x.slot = s;
  return x;
}

CompiledScalar lit(double v) {
  CompiledScalar x;
  x.kind = CompiledScalar::Kind::kConst;
  x.cval = v;
  return x;
}

CompiledBool cmp(sql::CmpOp op, CompiledScalar l, CompiledScalar r) {
  CompiledBool b;
  b.kind = CompiledBool::Kind::kCmp;
  b.cmp = op;
  b.lhs = std::move(l);
  b.rhs = std::move(r);
  return b;
}

// Two columns of awkward values: exact halves so ==/<= boundaries are hit,
// repeated values so IN matches multiple rows.
struct MaskFixture {
  static constexpr std::size_t kN = 1000;
  std::vector<double> c0, c1;
  std::vector<const double*> cols;

  MaskFixture() {
    uint64_t s = 42;
    auto next = [&s]() {
      s = s * 6364136223846793005ull + 1442695040888963407ull;
      return static_cast<double>((s >> 33) % 41) / 2.0 - 5.0;
    };
    for (std::size_t i = 0; i < kN; ++i) {
      c0.push_back(next());
      c1.push_back(next());
    }
    cols = {c0.data(), c1.data()};
  }

  void expect_mask_matches_eval(const CompiledBool& p) {
    BatchArena arena;
    arena.reset_scratch();
    uint8_t* mask = arena.mask(kN);
    kernels::eval_mask(p, cols.data(), kN, mask, arena);
    for (std::size_t i = 0; i < kN; ++i) {
      double row[2] = {c0[i], c1[i]};
      ASSERT_EQ(mask[i] != 0, p.eval(row)) << "row " << i;
    }
  }
};

TEST(MaskLoweringTest, InLowersToEqualityMaskOrs) {
  MaskFixture f;
  CompiledBool p;
  p.kind = CompiledBool::Kind::kIn;
  p.slot = 0;
  p.in_set = {-5.0, -0.5, 2.5, 99.0};  // 99 matches nothing
  f.expect_mask_matches_eval(p);
}

TEST(MaskLoweringTest, BetweenLowersToAndOfComparisons) {
  MaskFixture f;
  // The parser rewrites A BETWEEN x AND y to A >= x AND A <= y; the mask
  // path sees exactly this tree.
  CompiledBool p;
  p.kind = CompiledBool::Kind::kAnd;
  p.kids.push_back(cmp(sql::CmpOp::kGe, slot_ref(0), lit(-2.0)));
  p.kids.push_back(cmp(sql::CmpOp::kLe, slot_ref(0), lit(2.0)));
  f.expect_mask_matches_eval(p);
}

TEST(MaskLoweringTest, OrAndNotCombineMasks) {
  MaskFixture f;
  CompiledBool inner;
  inner.kind = CompiledBool::Kind::kOr;
  inner.kids.push_back(cmp(sql::CmpOp::kLt, slot_ref(0), lit(-3.0)));
  inner.kids.push_back(cmp(sql::CmpOp::kGt, slot_ref(1), lit(3.0)));
  inner.kids.push_back(cmp(sql::CmpOp::kEq, slot_ref(0), slot_ref(1)));
  CompiledBool p;
  p.kind = CompiledBool::Kind::kNot;
  p.kids.push_back(std::move(inner));
  f.expect_mask_matches_eval(p);
}

TEST(MaskLoweringTest, ArithmeticComparisonsMatchInterpreter) {
  MaskFixture f;
  CompiledScalar sum;
  sum.kind = CompiledScalar::Kind::kArith;
  sum.op = '+';
  sum.args = {slot_ref(0), slot_ref(1)};
  CompiledScalar prod;
  prod.kind = CompiledScalar::Kind::kArith;
  prod.op = '*';
  prod.args = {slot_ref(1), lit(0.5)};
  f.expect_mask_matches_eval(cmp(sql::CmpOp::kNe, sum, prod));
}

TEST(MaskLoweringTest, UdfCallFallsBackToScalarPerRow) {
  MaskFixture f;
  expr::UdfRegistry::ensure_builtins();
  CompiledScalar call;
  call.kind = CompiledScalar::Kind::kCall;
  call.udf = expr::UdfRegistry::find("MAG2");
  ASSERT_NE(call.udf, nullptr);
  call.args = {slot_ref(0), slot_ref(1)};
  f.expect_mask_matches_eval(cmp(sql::CmpOp::kGt, call, lit(10.0)));
}

TEST(MaskLoweringTest, GatherSelectedCompactsMask) {
  std::vector<uint8_t> mask = {1, 0, 0, 1, 1, 0, 1, 0};
  std::vector<uint32_t> sel(mask.size());
  std::size_t k = kernels::gather_selected(mask.data(), mask.size(),
                                           sel.data());
  ASSERT_EQ(k, 4u);
  EXPECT_EQ(sel[0], 0u);
  EXPECT_EQ(sel[1], 3u);
  EXPECT_EQ(sel[2], 4u);
  EXPECT_EQ(sel[3], 6u);
}

// ---------------------------------------------------------------------------
// Cross-tier equivalence on a real (small, mixed-type) dataset.  The
// reference rows come from the naive executor, which is pinned to the
// interpreter; the fast path runs each tier in turn.

struct TierFixture {
  TempDir tmp{"kerntier"};
  std::string text;
  std::unique_ptr<codegen::DataServicePlan> plan;

  TierFixture() {
    // 60 * 80 = 4800 rows: crosses the 4096-row kernel batch boundary, with
    // narrow integer and float32 fields so widening runs too.
    text = R"(
[S]
T = int
K = short int
V = float
W = double
[DS]
DatasetDescription = S
DIR[0] = n0/d
DATASET "DS" {
  DATASPACE { LOOP T 1:60:1 { LOOP G 1:80:1 { K V W } } }
  DATA { "DIR[0]/f" DIRID = 0:0:1 }
}
)";
    meta::Descriptor d = meta::parse_descriptor(text);
    plan = std::make_unique<codegen::DataServicePlan>(d, "DS", tmp.str());
    const afc::DatasetModel& model = plan->model();
    dataset::ValueFn fn = [](const std::string& attr, const meta::VarEnv& v) {
      double t = v.get("T"), g = v.get("G");
      if (attr == "K") return static_cast<double>(static_cast<int>(t + g) % 7);
      if (attr == "V") return static_cast<double>(static_cast<float>(
          (t * 37 + g * 11) / 97.0 - 10.0));
      return t * 1000 + g;
    };
    std::filesystem::create_directories(tmp.str() + "/n0/d");
    dataset::write_file_from_layout(*model.leaves()[0].decl, model.schema(),
                                    model.files()[0].env,
                                    model.files()[0].full_path, fn);
  }

  storm::QueryResult run(const std::string& sql, KernelMode mode) const {
    VirtualTable::Options vopts;
    vopts.cluster.kernel_mode = mode;
    VirtualTable vt = VirtualTable::open(text, "DS", tmp.str(), vopts);
    return vt.query_detailed(sql);
  }
};

const char* const kTierQueries[] = {
    "SELECT * FROM DS",
    "SELECT T, W FROM DS WHERE V BETWEEN -4 AND 4 AND K IN (1, 3, 6)",
    "SELECT W FROM DS WHERE NOT (T < 30 OR V > 0)",
    "SELECT K, V FROM DS WHERE MAG2(V, K) > 9 AND T <= 50",
};

TEST(KernelTierTest, VectorMatchesInterpReference) {
  TierFixture f;
  for (const char* sql : kTierQueries) {
    expr::Table want = f.plan->execute(f.plan->bind(sql));
    storm::QueryResult r = f.run(sql, KernelMode::kVector);
    EXPECT_TRUE(r.merged().same_rows(want)) << sql;
    EXPECT_GT(r.total_afcs_vector(), 0u) << sql;
    EXPECT_EQ(r.total_afcs_interp(), 0u) << sql;
  }
}

TEST(KernelTierTest, InterpModeRunsTheInterpreter) {
  TierFixture f;
  const char* sql = kTierQueries[1];
  expr::Table want = f.plan->execute(f.plan->bind(sql));
  storm::QueryResult r = f.run(sql, KernelMode::kInterp);
  EXPECT_TRUE(r.merged().same_rows(want));
  EXPECT_GT(r.total_afcs_interp(), 0u);
  EXPECT_EQ(r.total_afcs_vector() + r.total_afcs_jit(), 0u);
}

TEST(KernelTierTest, JitMatchesInterpReference) {
  if (!kernels::JitCache::instance().compiler_available())
    GTEST_SKIP() << "no system compiler";
  TierFixture f;
  TempDir cache("kernjitcache");
  ScopedEnv env("ADV_JIT_CACHE_DIR", cache.str());
  for (const char* sql : kTierQueries) {
    expr::Table want = f.plan->execute(f.plan->bind(sql));
    storm::QueryResult r = f.run(sql, KernelMode::kJit);
    EXPECT_TRUE(r.merged().same_rows(want)) << sql;
  }
  // The UDF query cannot be jitted (opaque function pointer) and must have
  // fallen back to vector; the pure queries must have run the generated
  // kernels.
  storm::QueryResult pure = f.run(kTierQueries[1], KernelMode::kJit);
  EXPECT_GT(pure.total_afcs_jit(), 0u);
  EXPECT_EQ(pure.total_afcs_interp(), 0u);
  storm::QueryResult udf = f.run(kTierQueries[3], KernelMode::kJit);
  EXPECT_EQ(udf.total_afcs_jit(), 0u);
  EXPECT_GT(udf.total_afcs_vector(), 0u);
}

// ---------------------------------------------------------------------------
// JitCache mechanics on a synthetic module (no planner involved).

const char* const kSyntheticSource = R"(// advjit-abi-v1 kernels_test synthetic
typedef long long (*advjit_fn_t)(const unsigned char* const*,
                                 unsigned long long, const long long*,
                                 long long, double*, unsigned int*);
extern "C" long long advjit_g0(const unsigned char* const* srcs,
                               unsigned long long nrows,
                               const long long* loops, long long row_first,
                               double* out, unsigned int* sel) {
  (void)srcs; (void)loops;
  long long m = 0;
  for (unsigned long long r = 0; r < nrows; ++r) {
    if ((row_first + (long long)r) % 2 != 0) continue;
    out[m] = (double)(row_first + (long long)r) * 10.0;
    sel[m] = (unsigned int)r;
    ++m;
  }
  return m;
}
extern "C" int advjit_num_groups(void) { return 1; }
extern "C" advjit_fn_t advjit_group_fn(int g) {
  return g == 0 ? &advjit_g0 : (advjit_fn_t)0;
}
)";

TEST(JitCacheTest, CompileMemoryHitAndDiskReload) {
  auto& cache = kernels::JitCache::instance();
  if (!cache.compiler_available()) GTEST_SKIP() << "no system compiler";
  TempDir dir("jitcache");
  ScopedEnv env("ADV_JIT_CACHE_DIR", dir.str());

  kernels::JitStats before = cache.stats();
  auto mod = cache.get_or_compile(kSyntheticSource);
  ASSERT_NE(mod, nullptr);
  EXPECT_EQ(cache.stats().compiles, before.compiles + 1);
  ASSERT_EQ(mod->num_groups(), 1);
  EXPECT_EQ(mod->group_fn(1), nullptr);
  EXPECT_EQ(mod->group_fn(-1), nullptr);

  // The generated function actually runs.
  double out[8];
  unsigned int sel[8];
  kernels::JitExtractFn fn = mod->group_fn(0);
  ASSERT_NE(fn, nullptr);
  long long m = fn(nullptr, 5, nullptr, 3, out, sel);  // rows 3..7, evens
  ASSERT_EQ(m, 2);
  EXPECT_EQ(out[0], 40.0);
  EXPECT_EQ(sel[0], 1u);
  EXPECT_EQ(out[1], 60.0);
  EXPECT_EQ(sel[1], 3u);

  // Second request: served from the in-process map, same module.
  auto mod2 = cache.get_or_compile(kSyntheticSource);
  EXPECT_EQ(mod2.get(), mod.get());
  EXPECT_EQ(cache.stats().memory_hits, before.memory_hits + 1);

  // Drop the memory map: the .so on disk is dlopen-ed instead of recompiled.
  cache.clear_memory();
  auto mod3 = cache.get_or_compile(kSyntheticSource);
  ASSERT_NE(mod3, nullptr);
  EXPECT_EQ(cache.stats().disk_hits, before.disk_hits + 1);
  EXPECT_EQ(cache.stats().compiles, before.compiles + 1);  // no recompile
  EXPECT_EQ(mod3->num_groups(), 1);
}

TEST(JitCacheTest, SourceHashIsStableAndDiscriminates) {
  EXPECT_EQ(kernels::jit_source_hash("abc"),
            kernels::jit_source_hash("abc"));
  EXPECT_NE(kernels::jit_source_hash("abc"),
            kernels::jit_source_hash("abd"));
}

// ---------------------------------------------------------------------------
// Degradation: jit mode must never fail a query — it falls back to vector.

TEST(JitFallbackTest, MissingCompilerFallsBackToVector) {
  TierFixture f;
  TempDir dir("jitnocc");
  ScopedEnv cxx("ADV_JIT_CXX", "/nonexistent/advjit-no-such-compiler");
  ScopedEnv cachedir("ADV_JIT_CACHE_DIR", dir.str());
  // A query constant unique to this test keeps the generated source out of
  // the in-process module map (which is consulted before the compiler).
  const char* sql = "SELECT T, W FROM DS WHERE V BETWEEN -3.125 AND 3.125";
  expr::Table want = f.plan->execute(f.plan->bind(sql));
  storm::QueryResult r = f.run(sql, KernelMode::kJit);
  EXPECT_TRUE(r.merged().same_rows(want));
  EXPECT_EQ(r.total_afcs_jit(), 0u);
  EXPECT_GT(r.total_afcs_vector(), 0u);
}

TEST(JitFallbackTest, InjectedCompileFaultFallsBackToVector) {
  TierFixture f;
  TempDir dir("jitfault");
  ScopedEnv cachedir("ADV_JIT_CACHE_DIR", dir.str());
  faultz::ScopedFaultPlan scope(21, "jit.compile=1");
  const char* sql = "SELECT T, W FROM DS WHERE V BETWEEN -1.0625 AND 5.25";
  expr::Table want = f.plan->execute(f.plan->bind(sql));
  storm::QueryResult r = f.run(sql, KernelMode::kJit);
  EXPECT_TRUE(r.merged().same_rows(want));
  EXPECT_EQ(r.total_afcs_jit(), 0u);
  EXPECT_GT(r.total_afcs_vector(), 0u);
  EXPECT_GT(faultz::FaultPlan::instance().stats(
                faultz::Site::kJitCompile).fires, 0u);
}

}  // namespace
}  // namespace adv
