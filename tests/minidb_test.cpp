// Tests for the PostgreSQL-substitute row store: heap file round trips,
// B+tree correctness, planner choices, storage inflation, and agreement
// with the advirt engine on the same data.
#include <gtest/gtest.h>

#include "codegen/plan.h"
#include "common/rng.h"
#include "common/tempdir.h"
#include "dataset/titan.h"
#include "minidb/btree.h"
#include "minidb/db.h"
#include "minidb/heap.h"

namespace adv::minidb {
namespace {

// ---------------------------------------------------------------------------
// Heap file

TEST(HeapFileTest, WriteScanRoundTrip) {
  TempDir tmp("heap");
  std::vector<HeapColumn> cols = {{"A", DataType::kInt32},
                                  {"B", DataType::kFloat32},
                                  {"C", DataType::kFloat64}};
  HeapFileWriter w(tmp.file("t.heap"), cols);
  for (int i = 0; i < 5000; ++i) {
    double row[3] = {static_cast<double>(i), static_cast<float>(i) * 0.5f,
                     i * 0.25};
    w.append(row);
  }
  EXPECT_EQ(w.tuple_count(), 5000u);
  w.close();

  HeapFileReader r(tmp.file("t.heap"));
  EXPECT_EQ(r.tuple_count(), 5000u);
  ASSERT_EQ(r.columns().size(), 3u);
  EXPECT_EQ(r.columns()[1].name, "B");
  EXPECT_EQ(r.columns()[1].type, DataType::kFloat32);

  int i = 0;
  HeapStats hs;
  r.scan(
      [&](const double* row) {
        EXPECT_DOUBLE_EQ(row[0], i);
        EXPECT_DOUBLE_EQ(row[2], i * 0.25);
        ++i;
      },
      &hs);
  EXPECT_EQ(i, 5000);
  EXPECT_EQ(hs.tuples_read, 5000u);
  EXPECT_GT(hs.pages_read, 10u);
}

TEST(HeapFileTest, TupleOverheadInflatesStorage) {
  TempDir tmp("heap");
  // 8 float32 columns = 32 raw bytes per row (the Titan shape).
  std::vector<HeapColumn> cols;
  for (int c = 0; c < 8; ++c)
    cols.push_back({"C" + std::to_string(c), DataType::kFloat32});
  HeapFileWriter w(tmp.file("t.heap"), cols);
  double row[8] = {};
  const int n = 20000;
  for (int i = 0; i < n; ++i) w.append(row);
  w.close();
  uint64_t raw = static_cast<uint64_t>(n) * 32;
  uint64_t stored = file_size(tmp.file("t.heap"));
  // Header + line pointer per tuple: expect roughly 1.8-2.1x inflation.
  EXPECT_GT(stored, raw * 17 / 10);
  EXPECT_LT(stored, raw * 22 / 10);
}

TEST(HeapFileTest, FetchReadsRequestedTuplesOnly) {
  TempDir tmp("heap");
  std::vector<HeapColumn> cols = {{"A", DataType::kInt32}};
  HeapFileWriter w(tmp.file("t.heap"), cols);
  std::vector<TupleId> tids;
  for (int i = 0; i < 10000; ++i) {
    double v = i;
    tids.push_back(w.append(&v));
  }
  w.close();
  HeapFileReader r(tmp.file("t.heap"));
  std::vector<TupleId> want = {tids[3], tids[4], tids[9999]};
  std::vector<double> got;
  HeapStats hs;
  r.fetch(want, [&](const double* row) { got.push_back(row[0]); }, &hs);
  ASSERT_EQ(got.size(), 3u);
  EXPECT_DOUBLE_EQ(got[0], 3);
  EXPECT_DOUBLE_EQ(got[1], 4);
  EXPECT_DOUBLE_EQ(got[2], 9999);
  EXPECT_EQ(hs.pages_read, 2u);  // tuples 3,4 share a page; 9999 elsewhere
}

TEST(HeapFileTest, BadFileRejected) {
  TempDir tmp("heap");
  write_text_file(tmp.file("junk"), std::string(kPageSize, 'x'));
  EXPECT_THROW(HeapFileReader r(tmp.file("junk")), IoError);
}

// ---------------------------------------------------------------------------
// B+tree

TEST(BTreeTest, RangeScanMatchesBruteForce) {
  TempDir tmp("bt");
  SplitMix64 rng(5);
  std::vector<BTree::Entry> entries;
  for (uint32_t i = 0; i < 50000; ++i)
    entries.push_back(
        {rng.next_unit(), TupleId{i / 100 + 1, static_cast<uint16_t>(i % 100)}});
  std::sort(entries.begin(), entries.end(),
            [](const BTree::Entry& a, const BTree::Entry& b) {
              return a.key < b.key;
            });
  BTree::build(tmp.file("t.idx"), entries);
  BTree t(tmp.file("t.idx"));
  EXPECT_EQ(t.entry_count(), 50000u);
  EXPECT_GE(t.height(), 2);

  for (auto [lo, hi] : std::vector<std::pair<double, double>>{
           {0.25, 0.26}, {0.0, 1.0}, {0.999, 2.0}, {-1.0, -0.5}, {0.5, 0.5}}) {
    std::vector<TupleId> got;
    BTreeStats bs;
    t.range_scan(lo, hi, [&](TupleId tid) { got.push_back(tid); }, &bs);
    std::vector<TupleId> want;
    for (const auto& e : entries)
      if (e.key >= lo && e.key <= hi) want.push_back(e.tid);
    EXPECT_EQ(got.size(), want.size()) << lo << ".." << hi;
    EXPECT_EQ(bs.entries_returned, want.size());
  }
}

TEST(BTreeTest, DuplicateKeyRunsSpanningLeavesAreComplete) {
  // Regression: long runs of equal keys cross leaf boundaries, so a run of
  // key k can begin at the tail of a leaf whose first entry is < k.  The
  // descent must pick the child *before* the first child whose min key
  // equals the probe, or those tail entries are silently skipped (this is
  // exactly the zone-map sidecar shape: many chunk entries per file id).
  TempDir tmp("btdup");
  std::vector<BTree::Entry> entries;
  uint32_t n = 0;
  for (double key = 0; key < 40; ++key)      // 40 distinct keys x 500 dups
    for (int d = 0; d < 500; ++d, ++n)       // ~= 79 entries/leaf -> runs
      entries.push_back(                     // straddle many leaves
          {key, TupleId{n / 100 + 1, static_cast<uint16_t>(n % 100)}});
  BTree::build(tmp.file("t.idx"), entries);
  BTree t(tmp.file("t.idx"));
  for (double key = 0; key < 40; ++key) {
    std::size_t got = 0;
    t.range_scan(key, key, [&](TupleId) { got++; });
    EXPECT_EQ(got, 500u) << "key " << key;
  }
}

TEST(BTreeTest, SelectiveScanTouchesFewPages) {
  TempDir tmp("bt");
  std::vector<BTree::Entry> entries;
  for (uint32_t i = 0; i < 100000; ++i)
    entries.push_back({static_cast<double>(i),
                       TupleId{i / 100 + 1, static_cast<uint16_t>(i % 100)}});
  BTree::build(tmp.file("t.idx"), entries);
  BTree t(tmp.file("t.idx"));
  BTreeStats bs;
  t.range_scan(500.0, 520.0, [](TupleId) {}, &bs);
  EXPECT_EQ(bs.entries_returned, 21u);
  EXPECT_LE(bs.pages_read, 4u);  // root + (maybe) inner + 1-2 leaves
}

TEST(BTreeTest, EmptyAndSingleton) {
  TempDir tmp("bt");
  BTree::build(tmp.file("e.idx"), {});
  BTree e(tmp.file("e.idx"));
  EXPECT_EQ(e.entry_count(), 0u);
  int hits = 0;
  e.range_scan(-1e300, 1e300, [&](TupleId) { hits++; });
  EXPECT_EQ(hits, 0);

  BTree::build(tmp.file("s.idx"), {{42.0, TupleId{1, 0}}});
  BTree s(tmp.file("s.idx"));
  s.range_scan(42.0, 42.0, [&](TupleId) { hits++; });
  EXPECT_EQ(hits, 1);
  EXPECT_DOUBLE_EQ(s.estimate_selectivity(42, 43), 1.0);
}

// ---------------------------------------------------------------------------
// Database

expr::Table small_titan_table(const dataset::TitanConfig& cfg) {
  expr::BoundQuery q(sql::parse_select("SELECT * FROM TITAN"),
                     dataset::titan_schema());
  return dataset::titan_oracle(cfg, q);
}

dataset::TitanConfig db_cfg() {
  dataset::TitanConfig cfg;
  cfg.cells_x = 4;
  cfg.cells_y = 4;
  cfg.cells_z = 2;
  cfg.points_per_chunk = 256;
  return cfg;
}

TEST(DatabaseTest, LoadQuerySeqScan) {
  TempDir tmp("db");
  expr::Table src = small_titan_table(db_cfg());
  LoadStats ls;
  Database db = Database::create(tmp.str(), "TITAN", src, {"X", "S1"}, &ls);
  EXPECT_EQ(ls.rows, src.num_rows());
  EXPECT_GT(ls.heap_bytes, ls.raw_bytes);
  EXPECT_GT(ls.index_bytes, 0u);
  EXPECT_EQ(db.disk_bytes(), ls.total_bytes());
  // Loaded size shows the paper's storage blowup (6 GB -> 18 GB shape).
  EXPECT_GT(ls.total_bytes(), ls.raw_bytes * 2);

  ExecStats es;
  expr::Table all = db.query("SELECT * FROM TITAN", &es);
  EXPECT_EQ(es.plan, "SeqScan");
  EXPECT_EQ(all.num_rows(), src.num_rows());
  EXPECT_TRUE(all.same_rows(src));
}

TEST(DatabaseTest, IndexScanChosenWhenSelective) {
  TempDir tmp("db");
  expr::Table src = small_titan_table(db_cfg());
  Database db = Database::create(tmp.str(), "TITAN", src, {"S1"});

  ExecStats sel, unsel;
  expr::Table a = db.query("SELECT * FROM TITAN WHERE S1 < 0.01", &sel);
  EXPECT_EQ(sel.plan, "IndexScan(S1)");
  expr::Table b = db.query("SELECT * FROM TITAN WHERE S1 < 0.5", &unsel);
  EXPECT_EQ(unsel.plan, "SeqScan");
  // Index scan reads fewer pages than a full scan.
  EXPECT_LT(sel.pages_read, unsel.pages_read);

  // Both plans produce oracle-correct results.
  expr::BoundQuery qa(sql::parse_select("SELECT * FROM TITAN WHERE S1 < "
                                        "0.01"),
                      db.schema());
  EXPECT_TRUE(a.same_rows(dataset::titan_oracle(db_cfg(), qa)));
  EXPECT_GT(b.num_rows(), a.num_rows());
}

TEST(DatabaseTest, IndexAndSeqScanAgree) {
  TempDir tmp("db");
  expr::Table src = small_titan_table(db_cfg());
  Database db = Database::create(tmp.str(), "TITAN", src, {"S1"});
  const char* sql = "SELECT X, S1 FROM TITAN WHERE S1 < 0.03 AND X > 10000";
  ExecStats es;
  expr::Table via_index = db.query(sql, &es);
  EXPECT_EQ(es.plan, "IndexScan(S1)");
  db.set_index_threshold(0.0);  // force seq scan
  ExecStats es2;
  expr::Table via_seq = db.query(sql, &es2);
  EXPECT_EQ(es2.plan, "SeqScan");
  EXPECT_TRUE(via_index.same_rows(via_seq));
}

TEST(DatabaseTest, ReopenAndErrors) {
  TempDir tmp("db");
  expr::Table src = small_titan_table(db_cfg());
  Database::create(tmp.str(), "TITAN", src, {"S1"});
  Database db = Database::open(tmp.str(), "TITAN", {"S1"});
  EXPECT_EQ(db.query("SELECT * FROM TITAN").num_rows(), src.num_rows());
  EXPECT_THROW(db.query("SELECT * FROM OTHER"), QueryError);
  EXPECT_THROW(db.query("SELECT NOPE FROM TITAN"), QueryError);
  EXPECT_THROW(Database::open(tmp.str(), "TITAN", {"NOPE"}), QueryError);
  EXPECT_THROW(Database::open(tmp.str(), "MISSING", {}), IoError);
}

TEST(DatabaseTest, ContradictoryPredicateReturnsEmpty) {
  TempDir tmp("db");
  expr::Table src = small_titan_table(db_cfg());
  Database db = Database::create(tmp.str(), "TITAN", src, {});
  ExecStats es;
  expr::Table t = db.query("SELECT * FROM TITAN WHERE X > 1 AND X < 0", &es);
  EXPECT_EQ(t.num_rows(), 0u);
  EXPECT_EQ(es.plan, "EmptyScan");
  EXPECT_EQ(es.pages_read, 0u);
}

}  // namespace
}  // namespace adv::minidb
