// Tests for the networked query service: loopback round trips, partitioned
// delivery, error propagation, concurrent clients.
#include <gtest/gtest.h>

#include <thread>

#include "common/tempdir.h"
#include "dataset/ipars.h"
#include "storm/net.h"

namespace adv::storm {
namespace {

struct NetFixture {
  TempDir tmp{"net"};
  dataset::IparsConfig cfg;
  dataset::GeneratedIpars gen;
  std::shared_ptr<codegen::DataServicePlan> plan;
  QueryServer server;

  static dataset::IparsConfig make_cfg() {
    dataset::IparsConfig c;
    c.nodes = 2;
    c.rels = 2;
    c.timesteps = 8;
    c.grid_per_node = 16;
    c.pad_vars = 0;
    return c;
  }

  NetFixture()
      : cfg(make_cfg()),
        gen(dataset::generate_ipars(cfg, dataset::IparsLayout::kV,
                                    tmp.str())),
        plan(std::make_shared<codegen::DataServicePlan>(
            meta::parse_descriptor(gen.descriptor_text), gen.dataset_name,
            gen.root)),
        server(plan) {}
};

TEST(QueryServerTest, LoopbackRoundTrip) {
  NetFixture f;
  ASSERT_GT(f.server.port(), 0);
  QueryClient client("127.0.0.1", f.server.port());
  const char* sql =
      "SELECT * FROM IparsData WHERE TIME <= 4 AND SOIL > 0.25";
  RemoteResult r = client.execute(sql);
  ASSERT_EQ(r.partitions.size(), 1u);
  // Schema travelled with the result.
  EXPECT_EQ(r.partitions[0].columns().size(), 10u);
  EXPECT_EQ(r.partitions[0].columns()[1].name, "TIME");
  EXPECT_EQ(r.partitions[0].columns()[1].type, DataType::kInt32);
  // Rows equal the local engine's.
  expr::BoundQuery q = f.plan->bind(sql);
  expr::Table want = dataset::ipars_oracle(f.cfg, q);
  EXPECT_TRUE(r.merged().same_rows(want));
  // Node stats arrived for both virtual nodes.
  ASSERT_EQ(r.node_stats.size(), 2u);
  EXPECT_GT(r.node_stats[0].rows_matched, 0u);
  EXPECT_EQ(f.server.queries_served(), 1u);
}

TEST(QueryServerTest, PartitionedDelivery) {
  NetFixture f;
  QueryClient client("127.0.0.1", f.server.port());
  PartitionSpec part;
  part.policy = PartitionSpec::Policy::kRoundRobin;
  part.num_consumers = 3;
  RemoteResult r = client.execute("SELECT * FROM IparsData", part);
  ASSERT_EQ(r.partitions.size(), 3u);
  EXPECT_EQ(r.total_rows(), f.cfg.total_rows());
  for (const auto& p : r.partitions) EXPECT_GT(p.num_rows(), 0u);
}

TEST(QueryServerTest, LargeResultStreamsInManyBatches) {
  // More rows than one 2048-row frame.
  NetFixture f;
  QueryClient client("127.0.0.1", f.server.port());
  RemoteResult r = client.execute("SELECT * FROM IparsData");
  EXPECT_EQ(r.total_rows(), f.cfg.total_rows());  // 8192 rows > one frame
}

TEST(QueryServerTest, ErrorsPropagateToClient) {
  NetFixture f;
  QueryClient client("127.0.0.1", f.server.port());
  try {
    client.execute("SELECT NOPE FROM IparsData");
    FAIL() << "expected QueryError";
  } catch (const QueryError& e) {
    EXPECT_NE(std::string(e.what()).find("NOPE"), std::string::npos);
  }
  EXPECT_THROW(client.execute("not sql at all"), QueryError);
  EXPECT_THROW(client.execute("SELECT * FROM WrongTable"), QueryError);
  // The server survives bad queries and still answers good ones.
  EXPECT_EQ(client.execute("SELECT REL FROM IparsData WHERE TIME = 1")
                .total_rows(),
            f.cfg.total_rows() / f.cfg.timesteps);
}

TEST(QueryServerTest, ConcurrentClients) {
  NetFixture f;
  std::vector<std::thread> clients;
  std::vector<uint64_t> rows(4, 0);
  for (int i = 0; i < 4; ++i) {
    clients.emplace_back([&f, &rows, i] {
      QueryClient client("127.0.0.1", f.server.port());
      RemoteResult r = client.execute(
          "SELECT * FROM IparsData WHERE REL = " + std::to_string(i % 2));
      rows[static_cast<std::size_t>(i)] = r.total_rows();
    });
  }
  for (auto& t : clients) t.join();
  uint64_t per_rel = f.cfg.total_rows() / 2;
  for (uint64_t n : rows) EXPECT_EQ(n, per_rel);
  EXPECT_EQ(f.server.queries_served(), 4u);
}

TEST(QueryServerTest, ConnectionToDeadServerFails) {
  int dead_port;
  {
    NetFixture f;
    dead_port = f.server.port();
  }  // server shut down
  QueryClient client("127.0.0.1", dead_port);
  EXPECT_THROW(client.execute("SELECT * FROM IparsData"), IoError);
}

TEST(QueryServerTest, TransferModelAppliesToRemoteQueries) {
  NetFixture f;
  ClusterOptions slow;
  slow.transfer.bandwidth_bytes_per_sec = 100e6 / 8;
  QueryServer slow_server(f.plan, slow);
  QueryClient client("127.0.0.1", slow_server.port());
  RemoteResult r = client.execute("SELECT * FROM IparsData WHERE TIME <= 2");
  EXPECT_GT(r.total_rows(), 0u);
}

}  // namespace
}  // namespace adv::storm
