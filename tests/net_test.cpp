// Tests for the networked query service: loopback round trips, partitioned
// delivery, error propagation, concurrent clients, protocol-v2 scheduling
// (queued/admitted progress, cancellation, deadlines, rejection), and
// deterministic shutdown.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <thread>

#include "common/tempdir.h"
#include "dataset/ipars.h"
#include "storm/net.h"
#include "storm/node_daemon.h"

namespace adv::storm {
namespace {

struct NetFixture {
  TempDir tmp{"net"};
  dataset::IparsConfig cfg;
  dataset::GeneratedIpars gen;
  std::shared_ptr<codegen::DataServicePlan> plan;
  QueryServer server;

  static dataset::IparsConfig make_cfg() {
    dataset::IparsConfig c;
    c.nodes = 2;
    c.rels = 2;
    c.timesteps = 8;
    c.grid_per_node = 16;
    c.pad_vars = 0;
    return c;
  }

  NetFixture()
      : cfg(make_cfg()),
        gen(dataset::generate_ipars(cfg, dataset::IparsLayout::kV,
                                    tmp.str())),
        plan(std::make_shared<codegen::DataServicePlan>(
            meta::parse_descriptor(gen.descriptor_text), gen.dataset_name,
            gen.root)),
        server(plan) {}
};

TEST(QueryServerTest, LoopbackRoundTrip) {
  NetFixture f;
  ASSERT_GT(f.server.port(), 0);
  QueryClient client("127.0.0.1", f.server.port());
  const char* sql =
      "SELECT * FROM IparsData WHERE TIME <= 4 AND SOIL > 0.25";
  RemoteResult r = client.execute(sql);
  ASSERT_EQ(r.partitions.size(), 1u);
  // Schema travelled with the result.
  EXPECT_EQ(r.partitions[0].columns().size(), 10u);
  EXPECT_EQ(r.partitions[0].columns()[1].name, "TIME");
  EXPECT_EQ(r.partitions[0].columns()[1].type, DataType::kInt32);
  // Rows equal the local engine's.
  expr::BoundQuery q = f.plan->bind(sql);
  expr::Table want = dataset::ipars_oracle(f.cfg, q);
  EXPECT_TRUE(r.merged().same_rows(want));
  // Node stats arrived for both virtual nodes.
  ASSERT_EQ(r.node_stats.size(), 2u);
  EXPECT_GT(r.node_stats[0].rows_matched, 0u);
  EXPECT_EQ(f.server.queries_served(), 1u);
}

TEST(QueryServerTest, PartitionedDelivery) {
  NetFixture f;
  QueryClient client("127.0.0.1", f.server.port());
  PartitionSpec part;
  part.policy = PartitionSpec::Policy::kRoundRobin;
  part.num_consumers = 3;
  RemoteResult r = client.execute("SELECT * FROM IparsData", part);
  ASSERT_EQ(r.partitions.size(), 3u);
  EXPECT_EQ(r.total_rows(), f.cfg.total_rows());
  for (const auto& p : r.partitions) EXPECT_GT(p.num_rows(), 0u);
}

TEST(QueryServerTest, LargeResultStreamsInManyBatches) {
  // More rows than one 2048-row frame.
  NetFixture f;
  QueryClient client("127.0.0.1", f.server.port());
  RemoteResult r = client.execute("SELECT * FROM IparsData");
  EXPECT_EQ(r.total_rows(), f.cfg.total_rows());  // 8192 rows > one frame
}

TEST(QueryServerTest, ErrorsPropagateToClient) {
  NetFixture f;
  QueryClient client("127.0.0.1", f.server.port());
  try {
    client.execute("SELECT NOPE FROM IparsData");
    FAIL() << "expected QueryError";
  } catch (const QueryError& e) {
    EXPECT_NE(std::string(e.what()).find("NOPE"), std::string::npos);
  }
  EXPECT_THROW(client.execute("not sql at all"), QueryError);
  EXPECT_THROW(client.execute("SELECT * FROM WrongTable"), QueryError);
  // The server survives bad queries and still answers good ones.
  EXPECT_EQ(client.execute("SELECT REL FROM IparsData WHERE TIME = 1")
                .total_rows(),
            f.cfg.total_rows() / f.cfg.timesteps);
}

TEST(QueryServerTest, ConcurrentClients) {
  NetFixture f;
  std::vector<std::thread> clients;
  std::vector<uint64_t> rows(4, 0);
  for (int i = 0; i < 4; ++i) {
    clients.emplace_back([&f, &rows, i] {
      QueryClient client("127.0.0.1", f.server.port());
      RemoteResult r = client.execute(
          "SELECT * FROM IparsData WHERE REL = " + std::to_string(i % 2));
      rows[static_cast<std::size_t>(i)] = r.total_rows();
    });
  }
  for (auto& t : clients) t.join();
  uint64_t per_rel = f.cfg.total_rows() / 2;
  for (uint64_t n : rows) EXPECT_EQ(n, per_rel);
  EXPECT_EQ(f.server.queries_served(), 4u);
}

TEST(QueryServerTest, ConnectionToDeadServerFails) {
  int dead_port;
  {
    NetFixture f;
    dead_port = f.server.port();
  }  // server shut down
  QueryClient client("127.0.0.1", dead_port);
  EXPECT_THROW(client.execute("SELECT * FROM IparsData"), IoError);
}

TEST(QueryServerTest, TransferModelAppliesToRemoteQueries) {
  NetFixture f;
  ClusterOptions slow;
  slow.transfer.bandwidth_bytes_per_sec = 100e6 / 8;
  QueryServer slow_server(f.plan, slow);
  QueryClient client("127.0.0.1", slow_server.port());
  RemoteResult r = client.execute("SELECT * FROM IparsData WHERE TIME <= 2");
  EXPECT_GT(r.total_rows(), 0u);
}

// ---------------------------------------------------------------------------
// Protocol v2: admission scheduling, cancellation, deadlines, shutdown.

using namespace std::chrono_literals;

// Per-row hold for keeping a server-side query running long enough to
// observe/cancel it.  UdfFn is a plain function pointer, hence the
// file-scope knob.
std::atomic<int> g_hold_us{0};

double slow_pass(const double*, std::size_t) {
  int us = g_hold_us.load(std::memory_order_relaxed);
  if (us > 0) std::this_thread::sleep_for(std::chrono::microseconds(us));
  return 1.0;
}

void register_slow_pass() {
  static bool once = [] {
    FilteringService::register_filter("SLOWPASS", 1, slow_pass);
    return true;
  }();
  (void)once;
}

TEST(QueryServerV2Test, SchedInfoTravelsWithStats) {
  NetFixture f;
  QueryClient client("127.0.0.1", f.server.port());
  RemoteResult r = client.execute("SELECT REL FROM IparsData WHERE TIME = 1");
  ASSERT_TRUE(r.sched.valid);
  EXPECT_GT(r.sched.query_id, 0u);
  EXPECT_GE(r.sched.run_seconds, 0.0);
  EXPECT_EQ(r.sched.completed, 1u);
  EXPECT_EQ(r.sched.submitted, 1u);
  EXPECT_GE(r.sched.peak_running, 1u);
  sched::SchedulerMetrics m = f.server.scheduler_metrics();
  EXPECT_EQ(m.completed, 1u);
  EXPECT_EQ(m.running, 0u);
}

TEST(QueryServerV2Test, ClientCancelStopsRunningQuery) {
  NetFixture f;
  register_slow_pass();
  g_hold_us.store(4000);
  // 512 rows * 4 ms of hold: ~2 s of UDF sleep (>= 1 s wall across the two
  // node threads) if never cancelled — finishing well under that floor IS
  // the assertion that cancel interrupted the running query.
  sched::SchedulerOptions sopts;
  QueryServer server(f.plan, {}, 0, nullptr, sopts);
  QueryClient client("127.0.0.1", server.port());

  CancelToken token;
  QueryOptions qopts;
  qopts.cancel = &token;
  std::atomic<bool> admitted{false};
  qopts.on_admitted = [&](uint64_t, double) { admitted.store(true); };
  std::thread canceller([&] {
    std::this_thread::sleep_for(50ms);
    token.cancel();
  });
  auto t0 = std::chrono::steady_clock::now();
  EXPECT_THROW(
      client.execute("SELECT * FROM IparsData WHERE SLOWPASS(SOIL) > 0", {},
                     qopts),
      CancelledError);
  double elapsed = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
  canceller.join();
  g_hold_us.store(0);
  EXPECT_LT(elapsed, 0.7);  // far below the >= 1 s uncancelled floor
  sched::SchedulerMetrics m = server.scheduler_metrics();
  EXPECT_EQ(m.cancelled, 1u);
  EXPECT_EQ(m.running, 0u);
  // The cancelled query released its slot: the server still answers.
  EXPECT_GT(client.execute("SELECT REL FROM IparsData WHERE TIME = 1")
                .total_rows(),
            0u);
}

TEST(QueryServerV2Test, DeadlineStopsRunningQuery) {
  NetFixture f;
  register_slow_pass();
  // 512 rows * 4 ms of hold (>= 1 s wall) against a 100 ms deadline.
  g_hold_us.store(4000);
  QueryServer server(f.plan);
  QueryClient client("127.0.0.1", server.port());
  QueryOptions qopts;
  qopts.deadline_seconds = 0.1;
  auto t0 = std::chrono::steady_clock::now();
  try {
    client.execute("SELECT * FROM IparsData WHERE SLOWPASS(SOIL) > 0", {},
                   qopts);
    FAIL() << "expected QueryError";
  } catch (const QueryError& e) {
    EXPECT_NE(std::string(e.what()).find("deadline"), std::string::npos);
  }
  double elapsed = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
  g_hold_us.store(0);
  EXPECT_LT(elapsed, 0.7);  // stopped well before the uncancelled floor
  EXPECT_EQ(server.scheduler_metrics().deadline_exceeded, 1u);
}

TEST(QueryServerV2Test, DisconnectCancelsInFlightQuery) {
  NetFixture f;
  register_slow_pass();
  g_hold_us.store(4000);
  sched::SchedulerOptions sopts;
  sopts.max_concurrent_queries = 1;
  QueryServer server(f.plan, {}, 0, nullptr, sopts);
  {
    // A client that vanishes mid-query: run it in a thread and cancel via
    // our own token shortly after admission — the interesting part is the
    // server side, which must classify and free the slot either way.
    CancelToken token;
    QueryOptions qopts;
    qopts.cancel = &token;
    std::thread t([&] {
      QueryClient client("127.0.0.1", server.port());
      try {
        client.execute("SELECT * FROM IparsData WHERE SLOWPASS(SOIL) > 0",
                       {}, qopts);
      } catch (const Error&) {
      }
    });
    for (int spin = 0; spin < 500 && server.scheduler_metrics().running == 0;
         ++spin)
      std::this_thread::sleep_for(1ms);
    token.cancel();
    t.join();
  }
  g_hold_us.store(0);
  // Slot freed; next query runs.
  QueryClient client("127.0.0.1", server.port());
  EXPECT_GT(client.execute("SELECT REL FROM IparsData WHERE TIME = 1")
                .total_rows(),
            0u);
  sched::SchedulerMetrics m = server.scheduler_metrics();
  EXPECT_EQ(m.cancelled, 1u);
  EXPECT_EQ(m.completed, 1u);
}

TEST(QueryServerV2Test, QueuedThenAdmittedHooksFire) {
  NetFixture f;
  register_slow_pass();
  // Holder: ~128 rows * 4 ms keeps the single slot busy for a few hundred
  // milliseconds — plenty for the probe query to connect and queue behind it.
  g_hold_us.store(4000);
  sched::SchedulerOptions sopts;
  sopts.max_concurrent_queries = 1;
  QueryServer server(f.plan, {}, 0, nullptr, sopts);

  std::thread holder([&] {
    QueryClient client("127.0.0.1", server.port());
    client.execute(
        "SELECT * FROM IparsData WHERE TIME <= 2 AND SLOWPASS(SOIL) > 0");
  });
  for (int spin = 0; spin < 500 && server.scheduler_metrics().running == 0;
       ++spin)
    std::this_thread::sleep_for(1ms);

  std::atomic<bool> queued{false}, admitted_after_queued{false};
  QueryOptions qopts;
  qopts.on_queued = [&](uint64_t id, std::size_t position, std::size_t) {
    EXPECT_GT(id, 0u);
    EXPECT_EQ(position, 0u);
    queued.store(true);
  };
  qopts.on_admitted = [&](uint64_t, double wait) {
    EXPECT_GE(wait, 0.0);
    admitted_after_queued.store(queued.load());
  };
  QueryClient client("127.0.0.1", server.port());
  RemoteResult r =
      client.execute("SELECT REL FROM IparsData WHERE TIME = 1", {}, qopts);
  holder.join();
  g_hold_us.store(0);
  EXPECT_TRUE(queued.load());
  EXPECT_TRUE(admitted_after_queued.load());
  EXPECT_GT(r.sched.queue_wait_seconds, 0.0);
  EXPECT_GT(r.total_rows(), 0u);
}

TEST(QueryServerV2Test, ShutdownIsDeterministicWithIdleConnection) {
  NetFixture* f = new NetFixture;
  // An idle connection: a raw TCP connect that never sends a query frame.
  // Shutdown must still return promptly (it shuts the socket down to
  // unpark the serving thread blocked in recv).
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(f->server.port()));
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr),
            0);
  std::this_thread::sleep_for(20ms);  // let the server accept it

  auto t0 = std::chrono::steady_clock::now();
  f->server.shutdown();
  f->server.shutdown();  // idempotent
  double secs = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
  EXPECT_LT(secs, 5.0);
  ::close(fd);
  delete f;  // destructor after explicit shutdown is a no-op
}

TEST(QueryServerV2Test, ShutdownDrainCancelsQueuedQuery) {
  NetFixture f;
  register_slow_pass();
  // Holder runs for a few hundred milliseconds so shutdown() overlaps it.
  g_hold_us.store(4000);
  sched::SchedulerOptions sopts;
  sopts.max_concurrent_queries = 1;
  auto server = std::make_unique<QueryServer>(f.plan, ClusterOptions{}, 0,
                                              nullptr, sopts);

  std::atomic<uint64_t> held_rows{0};
  std::thread holder([&] {
    QueryClient client("127.0.0.1", server->port());
    held_rows.store(
        client
            .execute(
                "SELECT * FROM IparsData WHERE TIME <= 2 AND SLOWPASS(SOIL) > 0")
            .total_rows());
  });
  for (int spin = 0; spin < 500 && server->scheduler_metrics().running == 0;
       ++spin)
    std::this_thread::sleep_for(1ms);

  std::atomic<bool> queued_cancelled{false};
  std::thread queued([&] {
    QueryClient client("127.0.0.1", server->port());
    try {
      client.execute("SELECT REL FROM IparsData WHERE TIME = 1");
    } catch (const Error& e) {
      if (std::string(e.what()).find("cancelled") != std::string::npos)
        queued_cancelled.store(true);
    }
  });
  for (int spin = 0;
       spin < 500 && server->scheduler_metrics().queue_depth == 0; ++spin)
    std::this_thread::sleep_for(1ms);

  server->shutdown();
  holder.join();
  queued.join();
  g_hold_us.store(0);
  // Drain let the running query finish and stream its rows...
  EXPECT_GT(held_rows.load(), 0u);
  // ...and expelled the queued one with a cancel outcome.
  EXPECT_TRUE(queued_cancelled.load());
  server.reset();
}

TEST(QueryServerV2Test, V2TailIgnoredForDefaultOptions) {
  // A default-constructed QueryOptions round-trips exactly like v1: no
  // deadline, normal priority, results identical.
  NetFixture f;
  QueryClient client("127.0.0.1", f.server.port());
  const char* sql = "SELECT * FROM IparsData WHERE TIME <= 4 AND SOIL > 0.25";
  RemoteResult v1_style = client.execute(sql);
  RemoteResult v2_style = client.execute(sql, {}, QueryOptions{});
  EXPECT_TRUE(v1_style.merged().same_rows(v2_style.merged()));
  EXPECT_EQ(f.server.queries_served(), 2u);
}

// ---------------------------------------------------------------------------
// v1/v2 interop edge cases, spoken frame-by-frame over raw sockets.  Frame
// layout: 4-byte little-endian payload length, 1-byte type, payload.

int raw_connect(int port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr),
            0);
  return fd;
}

template <typename T>
void raw_pod(std::vector<unsigned char>& buf, T v) {
  std::size_t at = buf.size();
  buf.resize(at + sizeof v);
  std::memcpy(buf.data() + at, &v, sizeof v);
}

void raw_string(std::vector<unsigned char>& buf, const std::string& s) {
  raw_pod<uint32_t>(buf, static_cast<uint32_t>(s.size()));
  buf.insert(buf.end(), s.begin(), s.end());
}

void raw_write(int fd, const void* p, std::size_t n) {
  const char* c = static_cast<const char*>(p);
  std::size_t off = 0;
  while (off < n) {
    ssize_t w = ::send(fd, c + off, n - off, MSG_NOSIGNAL);
    ASSERT_GT(w, 0);
    off += static_cast<std::size_t>(w);
  }
}

void raw_send_frame(int fd, uint8_t type,
                    const std::vector<unsigned char>& payload) {
  uint32_t len = static_cast<uint32_t>(payload.size());
  unsigned char header[5];
  std::memcpy(header, &len, 4);
  header[4] = type;
  raw_write(fd, header, 5);
  if (len) raw_write(fd, payload.data(), len);
}

bool raw_recv_frame(int fd, uint8_t& type, std::vector<unsigned char>& out) {
  unsigned char header[5];
  std::size_t off = 0;
  while (off < 5) {
    ssize_t r = ::recv(fd, header + off, 5 - off, 0);
    if (r <= 0) return false;
    off += static_cast<std::size_t>(r);
  }
  uint32_t len;
  std::memcpy(&len, header, 4);
  type = header[4];
  out.resize(len);
  off = 0;
  while (off < len) {
    ssize_t r = ::recv(fd, out.data() + off, len - off, 0);
    if (r <= 0) return false;
    off += static_cast<std::size_t>(r);
  }
  return true;
}

// The v1 part of a kQuery payload: default single-consumer partition spec
// plus the SQL text, and nothing after it.
std::vector<unsigned char> v1_query_payload(const std::string& sql) {
  std::vector<unsigned char> q;
  raw_pod<uint16_t>(q, 1);   // num_consumers
  raw_pod<uint8_t>(q, 0);    // Policy::kSingle
  raw_pod<int32_t>(q, -1);   // select_index
  raw_pod<double>(q, 0.0);   // range_lo
  raw_pod<double>(q, 1.0);   // range_hi
  raw_string(q, sql);
  return q;
}

// Drives one hand-rolled query and tallies the reply stream.
struct RawReply {
  bool schema = false, stats = false, end = false;
  uint8_t unexpected = 0;  // first frame type we did not recognize
  std::string error;       // kError payload, if any
  uint64_t rows = 0;
};

RawReply raw_roundtrip(int port, const std::vector<unsigned char>& query) {
  int fd = raw_connect(port);
  raw_send_frame(fd, 0x01, query);  // kQuery
  RawReply rep;
  uint8_t type = 0;
  std::vector<unsigned char> payload;
  while (raw_recv_frame(fd, type, payload)) {
    if (type == 0x02) {  // kSchema
      rep.schema = true;
    } else if (type == 0x03) {  // kRowBatch: u16 consumer, u32 nrows, ...
      if (payload.size() < 6) {
        rep.error = "short row batch frame";
        break;
      }
      uint32_t nrows;
      std::memcpy(&nrows, payload.data() + 2, 4);
      rep.rows += nrows;
    } else if (type == 0x04) {  // kStats
      rep.stats = true;
    } else if (type == 0x05) {  // kEnd
      rep.end = true;
      break;
    } else if (type == 0x06) {  // kError
      uint32_t n;
      std::memcpy(&n, payload.data(), 4);
      rep.error.assign(reinterpret_cast<const char*>(payload.data() + 4), n);
      break;
    } else if (type != 0x08 && type != 0x09) {  // not kQueued/kAdmitted
      rep.unexpected = type;
      break;
    }
  }
  ::close(fd);
  return rep;
}

TEST(ProtocolInteropTest, V1ClientWithoutTailIsServed) {
  // A v1 client stops after the SQL string — no deadline/priority tail.
  // The v2 server must apply defaults and serve the query normally.
  NetFixture f;
  RawReply rep = raw_roundtrip(
      f.server.port(),
      v1_query_payload("SELECT REL FROM IparsData WHERE TIME = 1"));
  EXPECT_TRUE(rep.error.empty()) << rep.error;
  EXPECT_EQ(rep.unexpected, 0);
  EXPECT_TRUE(rep.schema);
  EXPECT_TRUE(rep.stats);
  EXPECT_TRUE(rep.end);
  EXPECT_EQ(rep.rows, f.cfg.total_rows() / f.cfg.timesteps);
  EXPECT_EQ(f.server.scheduler_metrics().completed, 1u);
}

TEST(ProtocolInteropTest, UnknownTrailingQueryBytesAreIgnored) {
  // A hypothetical v3 client appends fields this server has never heard
  // of.  Positional parsing reads what it knows (v2 tail) and must ignore
  // the rest instead of failing the query.
  NetFixture f;
  std::vector<unsigned char> q =
      v1_query_payload("SELECT REL FROM IparsData WHERE TIME = 1");
  raw_pod<double>(q, 30.0);  // v2: deadline_seconds
  raw_pod<uint8_t>(q, 1);    // v2: priority
  for (int i = 0; i < 32; ++i) raw_pod<uint8_t>(q, 0xAB);  // "v3 fields"
  RawReply rep = raw_roundtrip(f.server.port(), q);
  EXPECT_TRUE(rep.error.empty()) << rep.error;
  EXPECT_TRUE(rep.end);
  EXPECT_EQ(rep.rows, f.cfg.total_rows() / f.cfg.timesteps);
}

TEST(ProtocolInteropTest, V1ServerWithoutSchedTailYieldsInvalidSchedInfo) {
  // A fake v1 server: schema, one row batch, kStats WITHOUT the v2 sched
  // tail, end.  The real client must surface SchedInfo{valid = false}
  // rather than misparse or reject the stream.
  int lfd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(lfd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = 0;
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::bind(lfd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
  ASSERT_EQ(::listen(lfd, 1), 0);
  socklen_t alen = sizeof addr;
  ASSERT_EQ(::getsockname(lfd, reinterpret_cast<sockaddr*>(&addr), &alen), 0);
  int port = ntohs(addr.sin_port);

  std::thread srv([lfd] {
    int c = ::accept(lfd, nullptr, nullptr);
    if (c < 0) return;
    uint8_t type = 0;
    std::vector<unsigned char> payload;
    if (!raw_recv_frame(c, type, payload) || type != 0x01) {
      ::close(c);
      return;
    }
    std::vector<unsigned char> schema;  // 1 column: X, float64
    raw_pod<uint16_t>(schema, 1);
    raw_pod<uint8_t>(schema, static_cast<uint8_t>(DataType::kFloat64));
    raw_pod<uint16_t>(schema, 1);
    schema.push_back('X');
    raw_send_frame(c, 0x02, schema);
    std::vector<unsigned char> batch;  // consumer 0, 1 row x 1 col: 42.0
    raw_pod<uint16_t>(batch, 0);
    raw_pod<uint32_t>(batch, 1);
    raw_pod<uint16_t>(batch, 1);
    raw_pod<double>(batch, 42.0);
    raw_send_frame(c, 0x03, batch);
    std::vector<unsigned char> stats;  // 1 node stat, NO sched tail
    raw_pod<uint32_t>(stats, 1);
    raw_pod<int32_t>(stats, 0);      // node_id
    raw_pod<uint64_t>(stats, 1);     // afcs
    raw_pod<uint64_t>(stats, 8);     // bytes_read
    raw_pod<uint64_t>(stats, 1);     // rows_matched
    raw_pod<double>(stats, 0.0);     // busy_seconds
    raw_send_frame(c, 0x04, stats);
    raw_send_frame(c, 0x05, {});     // kEnd
    ::close(c);
  });

  QueryClient client("127.0.0.1", port);
  RemoteResult r = client.execute("SELECT X FROM T");
  srv.join();
  ::close(lfd);

  EXPECT_FALSE(r.sched.valid);
  ASSERT_EQ(r.total_rows(), 1u);
  EXPECT_EQ(r.partitions[0].at(0, 0), 42.0);
  ASSERT_EQ(r.node_stats.size(), 1u);
  EXPECT_EQ(r.node_stats[0].rows_matched, 1u);
}

TEST(ProtocolInteropTest, CancelRacingCompletionIsCleanEitherWay) {
  // Fire the cancel token at staggered offsets around a short query's
  // completion.  Whatever the interleaving, the outcome must be one of:
  // the full correct result, or CancelledError — never a hang, a partial
  // row set, or a poisoned connection/server.
  NetFixture f;
  const char* sql = "SELECT REL FROM IparsData WHERE TIME = 1";
  const uint64_t want = f.cfg.total_rows() / f.cfg.timesteps;
  for (int i = 0; i < 8; ++i) {
    QueryClient client("127.0.0.1", f.server.port());
    CancelToken token;
    std::thread firer([&token, i] {
      std::this_thread::sleep_for(std::chrono::microseconds(200 * i));
      token.cancel();
    });
    QueryOptions qopts;
    qopts.cancel = &token;
    try {
      RemoteResult r = client.execute(sql, {}, qopts);
      EXPECT_EQ(r.total_rows(), want) << "iteration " << i;
    } catch (const CancelledError&) {
      // Equally valid: the cancel won the race.
    }
    firer.join();
  }
  // The server took every outcome in stride and still answers.
  QueryClient client("127.0.0.1", f.server.port());
  EXPECT_EQ(client.execute(sql).total_rows(), want);
  sched::SchedulerMetrics m = f.server.scheduler_metrics();
  EXPECT_EQ(m.running, 0u);
  EXPECT_EQ(m.completed + m.cancelled, m.admitted);
}

// Forward-compat across the v2.1 distribution frames: a peer speaking the
// scatter dialect at a peer that does not (and vice versa) must get an
// immediate typed error, never a hang.

TEST(ProtocolInteropTest, DistributionFramesAtQueryServerDegradeTyped) {
  NetFixture f;
  // kNodeQuery (0x10) and a bare kHeartbeat (0x13) — frame types this
  // server has no handler for.  Expected on both: one kError whose
  // trailing kind byte says kQuery (deterministic, don't-retry), then EOF.
  for (uint8_t type : {uint8_t{0x10}, uint8_t{0x13}}) {
    int fd = raw_connect(f.server.port());
    std::vector<unsigned char> payload;
    if (type == 0x10) {  // a well-formed scatter request, wrong endpoint
      raw_pod<uint32_t>(payload, 0);   // node_id
      raw_pod<uint64_t>(payload, 0);   // start_afc
      raw_pod<uint16_t>(payload, 1);   // num_consumers
      raw_pod<uint8_t>(payload, 0);    // policy
      raw_pod<int32_t>(payload, -1);
      raw_pod<double>(payload, 0.0);
      raw_pod<double>(payload, 1.0);
      raw_pod<uint64_t>(payload, 0);   // block_size
      raw_string(payload, "SELECT * FROM IparsData");
      raw_pod<double>(payload, 0.0);   // deadline
      raw_pod<double>(payload, 0.0);   // heartbeat interval
      raw_pod<uint32_t>(payload, 1);   // checkpoint_afcs
    }
    raw_send_frame(fd, type, payload);
    uint8_t rtype = 0;
    std::vector<unsigned char> reply;
    ASSERT_TRUE(raw_recv_frame(fd, rtype, reply)) << "hung on type "
                                                  << int(type);
    EXPECT_EQ(rtype, 0x06);  // kError
    uint32_t n;
    ASSERT_GE(reply.size(), 4u);
    std::memcpy(&n, reply.data(), 4);
    std::string msg(reinterpret_cast<const char*>(reply.data() + 4), n);
    EXPECT_NE(msg.find("query frame"), std::string::npos) << msg;
    // v2.1 kError tail: the ErrorKind byte, kQuery = non-retryable.
    ASSERT_EQ(reply.size(), 4u + n + 1);
    EXPECT_EQ(reply[4 + n], static_cast<uint8_t>(ErrorKind::kQuery));
    ::close(fd);
  }
  // The server survived both and still serves real clients.
  QueryClient client("127.0.0.1", f.server.port());
  EXPECT_GT(client.execute("SELECT * FROM IparsData").total_rows(), 0u);
}

TEST(ProtocolInteropTest, QueryClientAgainstNodeDaemonFailsTyped) {
  // The reverse direction: an old-style client's kQuery at a node daemon.
  // The daemon must answer a typed QueryError pointing at the right
  // endpoint, and survive to serve scatter traffic afterwards.
  NetFixture f;
  NodeDaemonOptions nopts;
  nopts.node_id = 0;
  NodeDaemon daemon(f.plan, nopts);
  QueryClient client("127.0.0.1", daemon.port());
  try {
    client.execute("SELECT * FROM IparsData");
    FAIL() << "expected QueryError";
  } catch (const QueryError& e) {
    EXPECT_NE(std::string(e.what()).find("DistCoordinator"),
              std::string::npos)
        << e.what();
  }
  EXPECT_EQ(daemon.queries_served(), 0u);
}

TEST(ProtocolInteropTest, ConnectTimeoutRefusesFastAndServesNormally) {
  NetFixture f;
  // A bounded connect against a dead port fails typed and fast (refused,
  // not a timeout wait)...
  int lfd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(lfd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = 0;
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::bind(lfd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
  socklen_t alen = sizeof addr;
  ASSERT_EQ(::getsockname(lfd, reinterpret_cast<sockaddr*>(&addr), &alen), 0);
  int dead_port = ntohs(addr.sin_port);
  ::close(lfd);  // bound then closed: nothing listens here
  QueryClient dead("127.0.0.1", dead_port, /*connect_timeout_seconds=*/1.0);
  auto t0 = std::chrono::steady_clock::now();
  EXPECT_THROW(dead.execute("SELECT * FROM IparsData"), IoError);
  double waited =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_LT(waited, 5.0);
  // ...and the same bounded-connect client works against a live server.
  QueryClient live("127.0.0.1", f.server.port(),
                   /*connect_timeout_seconds=*/5.0);
  EXPECT_GT(live.execute("SELECT * FROM IparsData").total_rows(), 0u);
}

TEST(ProtocolInteropTest, RetryAfterHintTravelsInStatsTail) {
  // v2.1 kStats tail: an idle server's hint is zero but present (the
  // sched block itself is valid), so polite clients can pace off it
  // without version sniffing.
  NetFixture f;
  QueryClient client("127.0.0.1", f.server.port());
  RemoteResult r = client.execute("SELECT REL FROM IparsData WHERE TIME = 1");
  EXPECT_TRUE(r.sched.valid);
  EXPECT_EQ(r.sched.retry_after_hint_seconds, 0.0);
}

}  // namespace
}  // namespace adv::storm
