// Tests for the dataset model (concrete file enumeration, implicit
// attributes) and the AFC planner, exercising the paper's running example
// (§4): IPARS with a COORDS file per node and one SOIL/SGAS file per
// (realization, node).
#include <gtest/gtest.h>

#include <set>

#include "afc/dataset_model.h"
#include "afc/planner.h"
#include "common/error.h"
#include "dataset/ipars.h"
#include "dataset/titan.h"

namespace adv::afc {
namespace {

// The paper's Figure 4 descriptor: 4 nodes, 4 realizations, 500 time steps,
// 100 grid points per node, SOIL+SGAS stored together.
const char* kPaperDescriptor = R"(
[IPARS]
REL = short int
TIME = int
X = float
Y = float
Z = float
SOIL = float
SGAS = float

[IparsData]
DatasetDescription = IPARS
DIR[0] = osu0/ipars
DIR[1] = osu1/ipars
DIR[2] = osu2/ipars
DIR[3] = osu3/ipars

DATASET "IparsData" {
  DATATYPE { IPARS }
  DATAINDEX { REL TIME }
  DATASET "ipars1" {
    DATASPACE {
      LOOP GRID ($DIRID*100+1):(($DIRID+1)*100):1 { X Y Z }
    }
    DATA { "DIR[$DIRID]/COORDS" DIRID = 0:3:1 }
  }
  DATASET "ipars2" {
    DATASPACE {
      LOOP TIME 1:500:1 {
        LOOP GRID ($DIRID*100+1):(($DIRID+1)*100):1 { SOIL SGAS }
      }
    }
    DATA { "DIR[$DIRID]/DATA$REL" REL = 0:3:1 DIRID = 0:3:1 }
  }
}
)";

DatasetModel paper_model() {
  return DatasetModel(meta::parse_descriptor(kPaperDescriptor), "IparsData",
                      "/data");
}

expr::BoundQuery bind(const DatasetModel& m, const std::string& sql) {
  return expr::BoundQuery(sql::parse_select(sql), m.schema());
}

// ---------------------------------------------------------------------------
// DatasetModel

TEST(DatasetModelTest, EnumeratesConcreteFiles) {
  DatasetModel m = paper_model();
  ASSERT_EQ(m.leaves().size(), 2u);
  EXPECT_EQ(m.leaves()[0].name, "ipars1");
  // 4 COORDS files + 16 DATA files.
  EXPECT_EQ(m.files_of_leaf(0).size(), 4u);
  EXPECT_EQ(m.files_of_leaf(1).size(), 16u);
  EXPECT_EQ(m.num_nodes(), 4);

  const ConcreteFile& coords0 = m.files()[m.files_of_leaf(0)[0]];
  EXPECT_EQ(coords0.path, "osu0/ipars/COORDS");
  EXPECT_EQ(coords0.full_path, "/data/osu0/ipars/COORDS");
  EXPECT_EQ(coords0.node_id, 0);
  ASSERT_EQ(coords0.regions.size(), 1u);
  EXPECT_EQ(coords0.regions[0].record_range.lo, 1);

  // DATA files carry REL as an implicit point and TIME as an implicit span.
  const ConcreteFile& d = m.files()[m.files_of_leaf(1)[0]];
  EXPECT_EQ(d.env.get("REL"), 0);
  ASSERT_EQ(d.implicit_points.size(), 1u);
  EXPECT_EQ(d.implicit_points[0].first, 0);  // REL attr index
  ASSERT_EQ(d.implicit_spans.size(), 1u);
  EXPECT_EQ(d.implicit_spans[0].attr, 1);  // TIME
  EXPECT_DOUBLE_EQ(d.implicit_spans[0].lo, 1);
  EXPECT_DOUBLE_EQ(d.implicit_spans[0].hi, 500);
}

TEST(DatasetModelTest, FileNamesSubstituteBindings) {
  DatasetModel m = paper_model();
  std::set<std::string> names;
  for (int fid : m.files_of_leaf(1))
    names.insert(m.files()[fid].path);
  EXPECT_TRUE(names.count("osu2/ipars/DATA3"));
  EXPECT_EQ(names.size(), 16u);
}

TEST(DatasetModelTest, ExpectedFileBytes) {
  DatasetModel m = paper_model();
  const ConcreteFile& coords = m.files()[m.files_of_leaf(0)[0]];
  EXPECT_EQ(m.expected_file_bytes(coords), 100u * 12u);
  const ConcreteFile& data = m.files()[m.files_of_leaf(1)[0]];
  EXPECT_EQ(m.expected_file_bytes(data), 500u * 100u * 8u);
}

TEST(DatasetModelTest, UnknownDatasetThrows) {
  EXPECT_THROW(DatasetModel(meta::parse_descriptor(kPaperDescriptor),
                            "Nonexistent", "/data"),
               QueryError);
}

// ---------------------------------------------------------------------------
// Planner: the paper's example query (REL in {0,1}, TIME 1..100).

TEST(PlannerTest, PaperExampleGroupsAndAfcs) {
  DatasetModel m = paper_model();
  expr::BoundQuery q = bind(m,
      "SELECT * FROM IparsData WHERE REL IN (0, 1) AND TIME >= 1 AND TIME "
      "<= 100");
  PlanResult pr = plan_afcs(m, q);

  // Find_File_Groups: 4 COORDS files and 8 DATA files survive file pruning
  // (REL in {0,1} excludes DATA2/DATA3 in every directory).
  EXPECT_EQ(pr.stats.files_matched, 4u + 8u);
  // 4 x 8 = 32 combinations considered; the 8 same-directory pairs align
  // (the paper's set T).
  EXPECT_EQ(pr.stats.groups_considered, 32u);
  EXPECT_EQ(pr.stats.groups_formed, 8u);
  // Process_File_Groups: 100 of the 500 time steps survive per group.
  EXPECT_EQ(pr.afcs.size(), 8u * 100u);

  // Every AFC joins one COORDS chunk and one DATA chunk.
  const GroupPlan& g = pr.groups[0];
  ASSERT_EQ(g.chunks.size(), 2u);
  EXPECT_EQ(g.row_ident, "GRID");
  EXPECT_EQ(g.row_attr, -1);
  ASSERT_EQ(g.loops.size(), 1u);
  EXPECT_EQ(g.loops[0].ident, "TIME");
  EXPECT_EQ(g.loops[0].attr, 1);

  const Afc& a = pr.afcs[0];
  EXPECT_EQ(a.num_rows, 100u);
  ASSERT_EQ(a.offsets.size(), 2u);
  // First TIME step: COORDS chunk at 0, DATA chunk at 0.
  EXPECT_EQ(a.offsets[0], 0u);
  EXPECT_EQ(a.offsets[1], 0u);
  // Second AFC of the group: DATA advances one TIME stride, COORDS reused.
  const Afc& a2 = pr.afcs[1];
  EXPECT_EQ(a2.loop_values[0], 2);
  uint64_t coords_off = 0, data_off = 0;
  for (std::size_t c = 0; c < g.chunks.size(); ++c) {
    if (g.chunks[c].bytes_per_row == 12) coords_off = a2.offsets[c];
    else data_off = a2.offsets[c];
  }
  EXPECT_EQ(coords_off, 0u);
  EXPECT_EQ(data_off, 100u * 8u);

  EXPECT_EQ(pr.candidate_rows(), 800u * 100u);
  EXPECT_EQ(pr.bytes_to_read(), 800u * 100u * 20u);
}

TEST(PlannerTest, CrossDirectoryGroupsPruned) {
  DatasetModel m = paper_model();
  expr::BoundQuery q = bind(m, "SELECT * FROM IparsData WHERE REL = 0");
  PlanResult pr = plan_afcs(m, q);
  // 4 COORDS x 4 DATA0 = 16 considered, only same-dir pairs align.
  EXPECT_EQ(pr.stats.groups_considered, 16u);
  EXPECT_EQ(pr.stats.groups_formed, 4u);
  EXPECT_EQ(pr.afcs.size(), 4u * 500u);
}

TEST(PlannerTest, ProjectionSkipsUnneededLeaves) {
  DatasetModel m = paper_model();
  // SOIL only: the COORDS leaf does not participate at all.
  expr::BoundQuery q =
      bind(m, "SELECT TIME, SOIL FROM IparsData WHERE REL = 0 AND TIME = 7");
  PlanResult pr = plan_afcs(m, q);
  EXPECT_EQ(pr.stats.groups_formed, 4u);
  ASSERT_EQ(pr.afcs.size(), 4u);
  const GroupPlan& g = pr.groups[0];
  ASSERT_EQ(g.chunks.size(), 1u);
  EXPECT_EQ(g.chunks[0].bytes_per_row, 8u);
  // TIME = 7 -> chunk offset 6 * 800.
  EXPECT_EQ(pr.afcs[0].offsets[0], 6u * 800u);
  EXPECT_EQ(pr.afcs[0].loop_values[0], 7);
}

TEST(PlannerTest, ImplicitOnlyAttributesResolve) {
  DatasetModel m = paper_model();
  // REL and TIME are never stored explicitly in this layout.
  expr::BoundQuery q =
      bind(m, "SELECT REL, TIME, SGAS FROM IparsData WHERE TIME <= 2");
  PlanResult pr = plan_afcs(m, q);
  EXPECT_EQ(pr.afcs.size(), 16u * 2u);
  const GroupPlan& g = pr.groups[0];
  ASSERT_EQ(g.const_implicits.size(), 1u);
  EXPECT_EQ(g.const_implicits[0].first, 0);  // REL
}

TEST(PlannerTest, EmptyTimeWindowPrunesAllFiles) {
  DatasetModel m = paper_model();
  expr::BoundQuery q = bind(m, "SELECT * FROM IparsData WHERE TIME > 900");
  PlanResult pr = plan_afcs(m, q);
  EXPECT_EQ(pr.afcs.size(), 0u);
  EXPECT_EQ(pr.stats.groups_formed, 0u);
}

TEST(PlannerTest, ContradictoryQueryShortCircuits) {
  DatasetModel m = paper_model();
  expr::BoundQuery q =
      bind(m, "SELECT * FROM IparsData WHERE TIME > 10 AND TIME < 5");
  PlanResult pr = plan_afcs(m, q);
  EXPECT_EQ(pr.afcs.size(), 0u);
  EXPECT_EQ(pr.stats.files_total, 0u);  // no enumeration at all
}

TEST(PlannerTest, InSetWithHolesSkipsLoopValues) {
  DatasetModel m = paper_model();
  expr::BoundQuery q =
      bind(m, "SELECT * FROM IparsData WHERE REL = 0 AND TIME IN (5, 9)");
  PlanResult pr = plan_afcs(m, q);
  ASSERT_EQ(pr.afcs.size(), 4u * 2u);
  std::set<int64_t> times;
  for (const auto& a : pr.afcs) times.insert(a.loop_values[0]);
  EXPECT_EQ(times, (std::set<int64_t>{5, 9}));
}

TEST(PlannerTest, OnlyNodeRestrictsPlanning) {
  DatasetModel m = paper_model();
  expr::BoundQuery q = bind(m, "SELECT * FROM IparsData WHERE TIME = 1");
  PlannerOptions opts;
  opts.only_node = 2;
  PlanResult pr = plan_afcs(m, q, opts);
  EXPECT_EQ(pr.stats.groups_formed, 4u);  // 4 rels on node 2
  for (const auto& g : pr.groups) EXPECT_EQ(g.node_id, 2);
}

TEST(PlannerTest, PruningOffStillCorrectJustMoreWork) {
  DatasetModel m = paper_model();
  expr::BoundQuery q =
      bind(m, "SELECT * FROM IparsData WHERE REL = 0 AND TIME = 3");
  PlannerOptions noprune;
  noprune.prune_files = false;
  noprune.prune_loops = false;
  PlanResult a = plan_afcs(m, q);
  PlanResult b = plan_afcs(m, q, noprune);
  // Without pruning, every file and every time step is considered...
  EXPECT_GT(b.stats.groups_considered, a.stats.groups_considered);
  EXPECT_GT(b.afcs.size(), a.afcs.size());
  // ...and the pruned plan reads strictly less.
  EXPECT_LT(a.bytes_to_read(), b.bytes_to_read());
}

TEST(PlannerTest, RowVaryingImplicitAttr) {
  // Transposed layout: TIME is the record loop, so TIME varies per row.
  const char* desc = R"(
[S]
TIME = int
V = float
[DS]
DatasetDescription = S
DIR[0] = n0/d
DATASET "DS" {
  DATASPACE { LOOP GRID 1:10:1 { LOOP TIME 1:50:1 { V } } }
  DATA { "DIR[0]/F" DIRID = 0:0:1 }
}
)";
  DatasetModel m(meta::parse_descriptor(desc), "DS", "/data");
  expr::BoundQuery q = bind(m, "SELECT TIME, V FROM DS WHERE TIME BETWEEN "
                               "20 AND 29");
  PlanResult pr = plan_afcs(m, q);
  ASSERT_EQ(pr.groups.size(), 1u);
  EXPECT_EQ(pr.groups[0].row_attr, 0);
  ASSERT_EQ(pr.afcs.size(), 10u);  // one per GRID value
  // Row window clipped to TIME 20..29: 10 rows starting at offset 19*4.
  EXPECT_EQ(pr.afcs[0].num_rows, 10u);
  EXPECT_EQ(pr.afcs[0].row_first, 20);
  EXPECT_EQ(pr.afcs[0].offsets[0], 19u * 4u);
}

TEST(PlannerTest, UnavailableAttributeThrows) {
  // Z removed from every file: still in schema, never stored, not a loop.
  const char* desc = R"(
[S]
TIME = int
V = float
Z = float
[DS]
DatasetDescription = S
DIR[0] = n0/d
DATASET "DS" {
  DATASPACE { LOOP TIME 1:5:1 { LOOP G 1:10:1 { V } } }
  DATA { "DIR[0]/F" DIRID = 0:0:1 }
}
)";
  DatasetModel m(meta::parse_descriptor(desc), "DS", "/data");
  expr::BoundQuery q = bind(m, "SELECT Z FROM DS");
  EXPECT_THROW(plan_afcs(m, q), QueryError);
}

TEST(PlannerTest, UnalignableRecordLoopsFormNoGroups) {
  // One leaf is grid-major, the other time-major: no alignment possible.
  const char* desc = R"(
[S]
TIME = int
A = float
B = float
[DS]
DatasetDescription = S
DIR[0] = n0/d
DATASET "DS" {
  DATASET "a" {
    DATASPACE { LOOP TIME 1:5:1 { LOOP G 1:10:1 { A } } }
    DATA { "DIR[0]/FA" DIRID = 0:0:1 }
  }
  DATASET "b" {
    DATASPACE { LOOP G 1:10:1 { LOOP TIME 1:5:1 { B } } }
    DATA { "DIR[0]/FB" DIRID = 0:0:1 }
  }
}
)";
  DatasetModel m(meta::parse_descriptor(desc), "DS", "/data");
  expr::BoundQuery q = bind(m, "SELECT A, B FROM DS");
  PlanResult pr = plan_afcs(m, q);
  EXPECT_EQ(pr.stats.groups_considered, 1u);
  EXPECT_EQ(pr.stats.groups_formed, 0u);
  EXPECT_TRUE(pr.afcs.empty());
}

// ---------------------------------------------------------------------------
// Generated descriptors all compile into models.

class LayoutModelTest
    : public ::testing::TestWithParam<dataset::IparsLayout> {};

TEST_P(LayoutModelTest, DescriptorParsesAndEnumerates) {
  dataset::IparsConfig cfg;
  cfg.nodes = 2;
  cfg.rels = 2;
  cfg.timesteps = 10;
  cfg.grid_per_node = 16;
  cfg.pad_vars = 1;
  std::string text = dataset::ipars_descriptor_text(cfg, GetParam());
  DatasetModel m(meta::parse_descriptor(text), "IparsData", "/data");
  EXPECT_GE(m.files().size(), 1u);
  EXPECT_EQ(m.num_nodes(), 2);
  EXPECT_EQ(m.schema().size(), static_cast<std::size_t>(cfg.num_attrs()));

  // A SELECT * plan must form at least one group per node.
  expr::BoundQuery q = bind(m, "SELECT * FROM IparsData");
  PlanResult pr = plan_afcs(m, q);
  EXPECT_GE(pr.stats.groups_formed, 2u);
  EXPECT_GT(pr.afcs.size(), 0u);
  // Candidate rows must cover the whole table exactly once.
  EXPECT_EQ(pr.candidate_rows(), cfg.total_rows());
}

INSTANTIATE_TEST_SUITE_P(
    AllLayouts, LayoutModelTest,
    ::testing::ValuesIn(dataset::all_ipars_layouts()),
    [](const ::testing::TestParamInfo<dataset::IparsLayout>& info) {
      return std::string("Layout") + dataset::to_string(info.param);
    });

TEST(TitanModelTest, DescriptorParsesAndPlans) {
  dataset::TitanConfig cfg;
  cfg.nodes = 2;
  cfg.cells_x = 4;
  cfg.cells_y = 2;
  cfg.cells_z = 2;
  cfg.points_per_chunk = 8;
  DatasetModel m(meta::parse_descriptor(dataset::titan_descriptor_text(cfg)),
                 "TitanData", "/data");
  EXPECT_EQ(m.files().size(), 2u);
  expr::BoundQuery q = bind(m, "SELECT * FROM TitanData");
  PlanResult pr = plan_afcs(m, q);
  // One AFC per chunk.
  EXPECT_EQ(pr.afcs.size(), static_cast<std::size_t>(cfg.num_chunks()));
  EXPECT_EQ(pr.candidate_rows(), cfg.total_rows());
}

}  // namespace
}  // namespace adv::afc
