// Unit tests for the dataset generators themselves: determinism, float32
// exactness (the property the oracles depend on), size accounting, and the
// layout-driven writer.
#include <gtest/gtest.h>

#include "afc/dataset_model.h"
#include "common/io.h"
#include "common/tempdir.h"
#include "dataset/ipars.h"
#include "dataset/layout_writer.h"
#include "dataset/titan.h"
#include "dataset/titan_st.h"

namespace adv::dataset {
namespace {

TEST(IparsValueTest, DeterministicAndFloat32Exact) {
  IparsConfig cfg;
  for (int attr : {0, 1, 2, 5, 7, 9}) {
    double a = ipars_value(cfg, attr, 1, 7, 33);
    double b = ipars_value(cfg, attr, 1, 7, 33);
    EXPECT_EQ(a, b);
    // Exactly representable as float32 (what the files store).
    EXPECT_EQ(static_cast<double>(static_cast<float>(a)), a);
  }
  // Different cells give different hashes (with overwhelming probability).
  EXPECT_NE(ipars_value(cfg, 5, 0, 1, 1), ipars_value(cfg, 5, 0, 1, 2));
  EXPECT_NE(ipars_value(cfg, 5, 0, 1, 1), ipars_value(cfg, 5, 0, 2, 1));
  // Different seeds decorrelate.
  IparsConfig other = cfg;
  other.seed = 99;
  EXPECT_NE(ipars_value(cfg, 5, 0, 1, 1), ipars_value(other, 5, 0, 1, 1));
}

TEST(IparsValueTest, DimensionAttrsAndRanges) {
  IparsConfig cfg;
  EXPECT_EQ(ipars_value(cfg, 0, 3, 10, 5), 3.0);   // REL
  EXPECT_EQ(ipars_value(cfg, 1, 3, 10, 5), 10.0);  // TIME
  for (int g = 1; g <= 100; ++g) {
    double soil = ipars_value(cfg, 5, 0, 1, g);
    EXPECT_GE(soil, 0.0);
    EXPECT_LT(soil, 1.0);
    double vx = ipars_value(cfg, 7, 0, 1, g);
    EXPECT_GT(vx, -25.0);
    EXPECT_LT(vx, 25.0);
  }
}

TEST(IparsConfigTest, SchemaAndSizes) {
  IparsConfig cfg;
  cfg.pad_vars = 12;
  meta::Schema s = ipars_schema(cfg);
  EXPECT_EQ(s.size(), 22u);  // REL TIME X Y Z + 17 variables
  EXPECT_EQ(cfg.num_variables(), 17);
  EXPECT_EQ(s.attrs.back().name, "P12");
  EXPECT_EQ(cfg.total_rows(),
            static_cast<uint64_t>(cfg.nodes) * cfg.rels * cfg.timesteps *
                cfg.grid_per_node);
  EXPECT_EQ(cfg.table_bytes(), cfg.total_rows() * (2 + 4 + 20 * 4));
}

TEST(GeneratorTest, BytesWrittenMatchLayoutPrediction) {
  IparsConfig cfg;
  cfg.nodes = 2;
  cfg.rels = 2;
  cfg.timesteps = 4;
  cfg.grid_per_node = 8;
  cfg.pad_vars = 0;
  for (auto layout : all_ipars_layouts()) {
    TempDir tmp("gen");
    auto gen = generate_ipars(cfg, layout, tmp.str());
    // Actual on-disk bytes equal both the generator's accounting and the
    // layout model's prediction.
    EXPECT_EQ(directory_bytes(tmp.path()), gen.bytes_written)
        << to_string(layout);
    afc::DatasetModel model(meta::parse_descriptor(gen.descriptor_text),
                            "IparsData", tmp.str());
    uint64_t predicted = 0;
    for (const auto& f : model.files())
      predicted += model.expected_file_bytes(f);
    EXPECT_EQ(predicted, gen.bytes_written) << to_string(layout);
    EXPECT_EQ(gen.files_written, model.files().size());
  }
}

TEST(GeneratorTest, RegenerationIsByteIdentical) {
  IparsConfig cfg;
  cfg.nodes = 1;
  cfg.rels = 1;
  cfg.timesteps = 3;
  cfg.grid_per_node = 5;
  cfg.pad_vars = 0;
  TempDir a("gen"), b("gen");
  generate_ipars(cfg, IparsLayout::kI, a.str());
  generate_ipars(cfg, IparsLayout::kI, b.str());
  std::string fa = read_text_file(a.str() + "/node0/ipars/ALL");
  std::string fb = read_text_file(b.str() + "/node0/ipars/ALL");
  EXPECT_EQ(fa, fb);
}

TEST(TitanValueTest, CoordinatesInsideChunkCell) {
  TitanConfig cfg;
  for (int chunk : {0, 17, cfg.num_chunks() - 1}) {
    for (int attr = 0; attr < 3; ++attr) {
      double lo, hi;
      titan_chunk_bounds(cfg, chunk, attr, &lo, &hi);
      EXPECT_LT(lo, hi);
      for (int e = 0; e < 16; ++e) {
        double v = titan_value(cfg, attr, chunk, e);
        EXPECT_GE(v, lo);
        EXPECT_LE(v, hi);
        EXPECT_EQ(static_cast<double>(static_cast<float>(v)), v);
      }
    }
  }
}

TEST(TitanValueTest, SensorsAreSpatiallyCorrelated) {
  TitanConfig cfg;
  // Within-chunk spread of S1 is bounded by the design's kSpread.
  for (int chunk : {0, 5, 31}) {
    double lo = 1e9, hi = -1e9;
    for (int e = 0; e < 64; ++e) {
      double v = titan_value(cfg, 3, chunk, e);
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    EXPECT_LE(hi - lo, 0.125 + 1e-9) << "chunk " << chunk;
  }
}

TEST(TitanConfigTest, NodeDivisibilityEnforced) {
  TitanConfig cfg;
  cfg.nodes = 3;
  cfg.cells_x = 8;  // not divisible by 3
  EXPECT_THROW(titan_descriptor_text(cfg), ValidationError);
}

TEST(TitanStValueTest, DimensionsAndSensorSpread) {
  TitanStConfig cfg;
  EXPECT_EQ(titan_st_value(cfg, 0, 7, 3, 5, 2), 7.0);  // TIME
  EXPECT_EQ(titan_st_value(cfg, 1, 7, 3, 5, 2), 3.0);  // LAT
  EXPECT_EQ(titan_st_value(cfg, 2, 7, 3, 5, 2), 5.0);  // LON
  // Sensor values are deterministic, float32-exact, and autocorrelated
  // within a chunk (spread bounded by the design's kSpread).
  double lo = 1e9, hi = -1e9;
  for (int cell = 1; cell <= 64; ++cell) {
    double v = titan_st_value(cfg, 3, 2, 1, 4, cell);
    EXPECT_EQ(v, titan_st_value(cfg, 3, 2, 1, 4, cell));
    EXPECT_EQ(static_cast<double>(static_cast<float>(v)), v);
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  EXPECT_GE(lo, 0.0);
  EXPECT_LT(hi, 1.0);
  EXPECT_LE(hi - lo, 0.125 + 1e-9);
}

TEST(TitanStGeneratorTest, BytesMatchLayoutPredictionBothFamilies) {
  TitanStConfig cfg;
  cfg.nodes = 2;
  cfg.lat_chunks = 2;
  cfg.lon_chunks = 3;
  cfg.timesteps = 4;
  cfg.cells_per_chunk = 8;
  for (bool colmajor : {false, true}) {
    cfg.colmajor = colmajor;
    TempDir tmp("tst");
    auto gen = generate_titan_st(cfg, tmp.str());
    EXPECT_EQ(gen.files_written, 2u);
    EXPECT_EQ(directory_bytes(tmp.path()), gen.bytes_written);
    afc::DatasetModel model(meta::parse_descriptor(gen.descriptor_text),
                            "TitanST", tmp.str());
    uint64_t predicted = 0;
    for (const auto& f : model.files())
      predicted += model.expected_file_bytes(f);
    EXPECT_EQ(predicted, gen.bytes_written) << "colmajor=" << colmajor;
    // 8-byte HDR + per-chunk 4-byte MARK + payload cells.
    uint64_t per_file = 8 +
                        static_cast<uint64_t>(cfg.chunks_per_file()) *
                            (4 + static_cast<uint64_t>(cfg.cells_per_chunk) *
                                     cfg.num_sensors() * 4);
    EXPECT_EQ(gen.bytes_written, 2 * per_file);
  }
}

TEST(TitanStGeneratorTest, ColmajorStoresAttributeContiguous) {
  // In the COLMAJOR family each chunk holds the full S1 array, then S2, ...
  // — byte-compare one chunk against the oracle in that order.
  TitanStConfig cfg;
  cfg.nodes = 1;
  cfg.lat_chunks = 1;
  cfg.lon_chunks = 1;
  cfg.timesteps = 1;
  cfg.cells_per_chunk = 4;
  cfg.colmajor = true;
  TempDir tmp("tstcm");
  auto gen = generate_titan_st(cfg, tmp.str());
  std::string bytes = read_text_file(tmp.str() + "/node0/titanst/GRID");
  ASSERT_EQ(bytes.size(), 8u + 4u + 4u * 5u * 4u);
  std::size_t off = 12;  // HDR + MARK
  for (int attr = 3; attr < 8; ++attr)
    for (int cell = 1; cell <= 4; ++cell) {
      float expect =
          static_cast<float>(titan_st_value(cfg, attr, 1, 1, 1, cell));
      float got;
      std::memcpy(&got, bytes.data() + off, 4);
      EXPECT_EQ(got, expect) << "attr " << attr << " cell " << cell;
      off += 4;
    }
}

TEST(LayoutWriterTest, UnknownAttributeThrows) {
  const char* desc = R"(
[S]
A = int
[DS]
DatasetDescription = S
DIR[0] = n/d
DATASET "DS" {
  DATASPACE { LOOP I 1:2:1 { A } }
  DATA { "DIR[0]/f" DIRID = 0:0:1 }
}
)";
  meta::Descriptor d = meta::parse_descriptor(desc);
  TempDir tmp("lw");
  meta::VarEnv env;
  // Writer writes what the layout says; a value function is never asked
  // about attributes outside the layout.
  uint64_t n = write_file_from_layout(
      d.datasets[0], d.schemas[0], env, tmp.file("f"),
      [](const std::string& attr, const meta::VarEnv&) {
        EXPECT_EQ(attr, "A");
        return 7.0;
      });
  EXPECT_EQ(n, 8u);  // two int32 values
  EXPECT_EQ(file_size(tmp.file("f")), 8u);
}

}  // namespace
}  // namespace adv::dataset
