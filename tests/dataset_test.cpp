// Unit tests for the dataset generators themselves: determinism, float32
// exactness (the property the oracles depend on), size accounting, and the
// layout-driven writer.
#include <gtest/gtest.h>

#include "afc/dataset_model.h"
#include "common/io.h"
#include "common/tempdir.h"
#include "dataset/ipars.h"
#include "dataset/layout_writer.h"
#include "dataset/titan.h"

namespace adv::dataset {
namespace {

TEST(IparsValueTest, DeterministicAndFloat32Exact) {
  IparsConfig cfg;
  for (int attr : {0, 1, 2, 5, 7, 9}) {
    double a = ipars_value(cfg, attr, 1, 7, 33);
    double b = ipars_value(cfg, attr, 1, 7, 33);
    EXPECT_EQ(a, b);
    // Exactly representable as float32 (what the files store).
    EXPECT_EQ(static_cast<double>(static_cast<float>(a)), a);
  }
  // Different cells give different hashes (with overwhelming probability).
  EXPECT_NE(ipars_value(cfg, 5, 0, 1, 1), ipars_value(cfg, 5, 0, 1, 2));
  EXPECT_NE(ipars_value(cfg, 5, 0, 1, 1), ipars_value(cfg, 5, 0, 2, 1));
  // Different seeds decorrelate.
  IparsConfig other = cfg;
  other.seed = 99;
  EXPECT_NE(ipars_value(cfg, 5, 0, 1, 1), ipars_value(other, 5, 0, 1, 1));
}

TEST(IparsValueTest, DimensionAttrsAndRanges) {
  IparsConfig cfg;
  EXPECT_EQ(ipars_value(cfg, 0, 3, 10, 5), 3.0);   // REL
  EXPECT_EQ(ipars_value(cfg, 1, 3, 10, 5), 10.0);  // TIME
  for (int g = 1; g <= 100; ++g) {
    double soil = ipars_value(cfg, 5, 0, 1, g);
    EXPECT_GE(soil, 0.0);
    EXPECT_LT(soil, 1.0);
    double vx = ipars_value(cfg, 7, 0, 1, g);
    EXPECT_GT(vx, -25.0);
    EXPECT_LT(vx, 25.0);
  }
}

TEST(IparsConfigTest, SchemaAndSizes) {
  IparsConfig cfg;
  cfg.pad_vars = 12;
  meta::Schema s = ipars_schema(cfg);
  EXPECT_EQ(s.size(), 22u);  // REL TIME X Y Z + 17 variables
  EXPECT_EQ(cfg.num_variables(), 17);
  EXPECT_EQ(s.attrs.back().name, "P12");
  EXPECT_EQ(cfg.total_rows(),
            static_cast<uint64_t>(cfg.nodes) * cfg.rels * cfg.timesteps *
                cfg.grid_per_node);
  EXPECT_EQ(cfg.table_bytes(), cfg.total_rows() * (2 + 4 + 20 * 4));
}

TEST(GeneratorTest, BytesWrittenMatchLayoutPrediction) {
  IparsConfig cfg;
  cfg.nodes = 2;
  cfg.rels = 2;
  cfg.timesteps = 4;
  cfg.grid_per_node = 8;
  cfg.pad_vars = 0;
  for (auto layout : all_ipars_layouts()) {
    TempDir tmp("gen");
    auto gen = generate_ipars(cfg, layout, tmp.str());
    // Actual on-disk bytes equal both the generator's accounting and the
    // layout model's prediction.
    EXPECT_EQ(directory_bytes(tmp.path()), gen.bytes_written)
        << to_string(layout);
    afc::DatasetModel model(meta::parse_descriptor(gen.descriptor_text),
                            "IparsData", tmp.str());
    uint64_t predicted = 0;
    for (const auto& f : model.files())
      predicted += model.expected_file_bytes(f);
    EXPECT_EQ(predicted, gen.bytes_written) << to_string(layout);
    EXPECT_EQ(gen.files_written, model.files().size());
  }
}

TEST(GeneratorTest, RegenerationIsByteIdentical) {
  IparsConfig cfg;
  cfg.nodes = 1;
  cfg.rels = 1;
  cfg.timesteps = 3;
  cfg.grid_per_node = 5;
  cfg.pad_vars = 0;
  TempDir a("gen"), b("gen");
  generate_ipars(cfg, IparsLayout::kI, a.str());
  generate_ipars(cfg, IparsLayout::kI, b.str());
  std::string fa = read_text_file(a.str() + "/node0/ipars/ALL");
  std::string fb = read_text_file(b.str() + "/node0/ipars/ALL");
  EXPECT_EQ(fa, fb);
}

TEST(TitanValueTest, CoordinatesInsideChunkCell) {
  TitanConfig cfg;
  for (int chunk : {0, 17, cfg.num_chunks() - 1}) {
    for (int attr = 0; attr < 3; ++attr) {
      double lo, hi;
      titan_chunk_bounds(cfg, chunk, attr, &lo, &hi);
      EXPECT_LT(lo, hi);
      for (int e = 0; e < 16; ++e) {
        double v = titan_value(cfg, attr, chunk, e);
        EXPECT_GE(v, lo);
        EXPECT_LE(v, hi);
        EXPECT_EQ(static_cast<double>(static_cast<float>(v)), v);
      }
    }
  }
}

TEST(TitanValueTest, SensorsAreSpatiallyCorrelated) {
  TitanConfig cfg;
  // Within-chunk spread of S1 is bounded by the design's kSpread.
  for (int chunk : {0, 5, 31}) {
    double lo = 1e9, hi = -1e9;
    for (int e = 0; e < 64; ++e) {
      double v = titan_value(cfg, 3, chunk, e);
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    EXPECT_LE(hi - lo, 0.125 + 1e-9) << "chunk " << chunk;
  }
}

TEST(TitanConfigTest, NodeDivisibilityEnforced) {
  TitanConfig cfg;
  cfg.nodes = 3;
  cfg.cells_x = 8;  // not divisible by 3
  EXPECT_THROW(titan_descriptor_text(cfg), ValidationError);
}

TEST(LayoutWriterTest, UnknownAttributeThrows) {
  const char* desc = R"(
[S]
A = int
[DS]
DatasetDescription = S
DIR[0] = n/d
DATASET "DS" {
  DATASPACE { LOOP I 1:2:1 { A } }
  DATA { "DIR[0]/f" DIRID = 0:0:1 }
}
)";
  meta::Descriptor d = meta::parse_descriptor(desc);
  TempDir tmp("lw");
  meta::VarEnv env;
  // Writer writes what the layout says; a value function is never asked
  // about attributes outside the layout.
  uint64_t n = write_file_from_layout(
      d.datasets[0], d.schemas[0], env, tmp.file("f"),
      [](const std::string& attr, const meta::VarEnv&) {
        EXPECT_EQ(attr, "A");
        return 7.0;
      });
  EXPECT_EQ(n, 8u);  // two int32 values
  EXPECT_EQ(file_size(tmp.file("f")), 8u);
}

}  // namespace
}  // namespace adv::dataset
