// Differential test: the optimized planner (afc::plan_afcs, with its
// incremental cartesian pruning and interval jumps) must produce exactly
// the same aligned file chunk sets as the literal Figure 5 reference
// implementation, for every layout and a battery of queries.  Plan-only —
// no data files are needed to compare planners.
#include <gtest/gtest.h>

#include "afc/planner.h"
#include "afc/reference.h"
#include "dataset/ipars.h"
#include "dataset/titan.h"
#include "index/minmax.h"

namespace adv::afc {
namespace {

void expect_same_plans(const DatasetModel& model, const std::string& sql,
                       const ChunkFilter* filter = nullptr) {
  expr::BoundQuery q(sql::parse_select(sql), model.schema());
  PlannerOptions opts;
  opts.filter = filter;
  std::vector<reference::FlatAfc> fast =
      reference::flatten(plan_afcs(model, q, opts));
  std::vector<reference::FlatAfc> ref =
      reference::plan_reference(model, q, filter);
  ASSERT_EQ(fast.size(), ref.size()) << sql;
  EXPECT_EQ(fast, ref) << sql;
}

class ReferenceDiffTest
    : public ::testing::TestWithParam<dataset::IparsLayout> {};

TEST_P(ReferenceDiffTest, OptimizedPlannerMatchesFigure5) {
  dataset::IparsConfig cfg;
  cfg.nodes = 2;
  cfg.rels = 3;
  cfg.timesteps = 9;
  cfg.grid_per_node = 12;
  cfg.pad_vars = 2;
  std::string text = dataset::ipars_descriptor_text(cfg, GetParam());
  DatasetModel model(meta::parse_descriptor(text), "IparsData", "/data");

  for (const char* sql : {
           "SELECT * FROM IparsData",
           "SELECT * FROM IparsData WHERE TIME >= 3 AND TIME <= 7",
           "SELECT * FROM IparsData WHERE REL IN (0, 2)",
           "SELECT * FROM IparsData WHERE REL = 1 AND TIME IN (2, 5, 8)",
           "SELECT SOIL FROM IparsData WHERE TIME > 4",
           "SELECT TIME, SGAS FROM IparsData WHERE SGAS < 0.5",
           "SELECT X, Y FROM IparsData WHERE REL = 0 AND TIME = 1",
           "SELECT * FROM IparsData WHERE TIME > 100",  // empty
           "SELECT * FROM IparsData WHERE SOIL > 0.2 AND SOIL < 0.3",
       }) {
    expect_same_plans(model, sql);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllLayouts, ReferenceDiffTest,
    ::testing::ValuesIn(dataset::all_ipars_layouts()),
    [](const ::testing::TestParamInfo<dataset::IparsLayout>& info) {
      return std::string("Layout") + dataset::to_string(info.param);
    });

TEST(ReferenceDiffTest, TransposedRecordLoop) {
  const char* desc = R"(
[S]
TIME = int
V = float
W = float
[DS]
DatasetDescription = S
DIR[0] = n0/d
DATASET "DS" {
  DATASET "a" {
    DATASPACE { LOOP GRID 1:6:1 { LOOP TIME 1:20:1 { V } } }
    DATA { "DIR[0]/A" DIRID = 0:0:1 }
  }
  DATASET "b" {
    DATASPACE { LOOP GRID 1:6:1 { LOOP TIME 1:20:1 { W } } }
    DATA { "DIR[0]/B" DIRID = 0:0:1 }
  }
}
)";
  DatasetModel model(meta::parse_descriptor(desc), "DS", "/data");
  for (const char* sql : {
           "SELECT * FROM DS",
           "SELECT * FROM DS WHERE TIME BETWEEN 5 AND 9",
           "SELECT V FROM DS WHERE TIME = 13",
           "SELECT TIME, W FROM DS WHERE W > 0.5 AND TIME <= 4",
       }) {
    expect_same_plans(model, sql);
  }
}

TEST(ReferenceDiffTest, TitanWithChunkIndexFilter) {
  dataset::TitanConfig cfg;
  cfg.nodes = 2;
  cfg.cells_x = 4;
  cfg.cells_y = 2;
  cfg.cells_z = 2;
  cfg.points_per_chunk = 8;
  DatasetModel model(meta::parse_descriptor(dataset::titan_descriptor_text(cfg)),
                     "TitanData", "/data");

  // Synthesize a chunk index directly from the generator's geometry (no
  // data files needed): bounds per (file, offset).
  index::MinMaxIndex idx({0, 1, 2});
  int cpn = cfg.num_chunks() / cfg.nodes;
  for (int chunk = 0; chunk < cfg.num_chunks(); ++chunk) {
    int node = chunk / cpn;
    uint64_t offset =
        static_cast<uint64_t>(chunk % cpn) * cfg.points_per_chunk * 32;
    index::ChunkBounds b;
    for (int a = 0; a < 3; ++a) {
      double lo, hi;
      dataset::titan_chunk_bounds(cfg, chunk, a, &lo, &hi);
      b.bounds.push_back({lo, hi});
    }
    idx.add({"/data/node" + std::to_string(node) + "/titan/CHUNKS", offset},
            b);
  }

  for (const char* sql : {
           "SELECT * FROM TitanData",
           "SELECT * FROM TitanData WHERE X <= 9999 AND Y <= 9999",
           "SELECT S1 FROM TitanData WHERE Z >= 600",
       }) {
    expect_same_plans(model, sql, &idx);
    expect_same_plans(model, sql, nullptr);
  }
}

}  // namespace
}  // namespace adv::afc
