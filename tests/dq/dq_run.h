// Differential query-fuzz runner.
//
// run_seed() drives one generated dataset (see dq_gen.h) through the whole
// stack twice per query — the naive single-threaded reference executor
// (DataServicePlan::execute, plus the Figure 5 reference planner and the
// generator's own cell oracle) and the full fast path (VirtualTable:
// parallel cluster + zone map + plan cache, optionally the v2 wire
// protocol) — and demands exactly the same rows.  For aggregate queries
// the SUM/AVG columns compare within a small relative tolerance against
// the *independent* implementations (naive reference, cell oracle) — their
// plain/long-double folds legitimately differ from the engine's exact
// superaccumulator — while keys, COUNT, MIN/MAX, and the LIMIT cut stay
// bit-exact, and the engine's own backends (cluster, server, dist, plan
// cache) must agree bit for bit with each other.  Under an armed fault
// campaign the contract weakens to: correct rows, or a clean typed
// adv::Error, within the deadline.  Never wrong rows, never a hang.
//
// A final clean phase generates a second dataset ("DqB") and runs random
// cross-dataset implicit-attribute joins (api/join_query.h) against a
// nested-loop join of the two sides' cell oracles — with the A-side scan
// routed through the DistCoordinator when --dist is on.
//
// Shared by tests/dq/dq_diff_test.cpp, tests/dq/dq_fault_test.cpp, and
// tools/adv_fuzz.cpp (the replay CLI) so a CI failure reproduces exactly.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/io.h"
#include "common/kernel_mode.h"
#include "dq/dq_gen.h"
#include "expr/table.h"

namespace adv::dq {

// Exact (bit-pattern, no tolerance) row-multiset comparison helpers.
bool rows_equal_exact(const expr::Table& a, const expr::Table& b);
// a ⊆ b as multisets: every row of `a` is a row of `b`, at most as often.
bool rows_subset(const expr::Table& a, const expr::Table& b);

struct DqOptions {
  int queries_per_seed = 5;
  // Also round-trip each query through QueryServer/QueryClient (protocol
  // v2 on loopback).
  bool with_server = false;
  // Also scatter/gather each query through per-node NodeDaemons and a
  // DistCoordinator (the distribution frames on loopback; daemons run
  // in-process, one per virtual node).
  bool with_dist = false;
  // Fault campaign: non-empty spec arms faultz::FaultPlan with
  // {fault_seed, fault_spec} for the query phase (never for dataset
  // generation or reference computation) and disarms afterwards.
  std::string fault_spec;
  uint64_t fault_seed = 0;
  // Per-query deadline handed to the CancelToken; a query exceeding twice
  // this wall-clock budget counts as a hang (= failure).
  double deadline_seconds = 20.0;
  // Run the fast path in partial-results mode: node casualties yield a
  // subset of the reference rows instead of an error.
  bool partial_results = false;
  // I/O mode for the fast path's cluster (kAuto = env/mmap).
  IoMode io_mode = IoMode::kAuto;
  // Kernel tier for the fast path (kAuto = env/vector).  The reference
  // executor is pinned to the interpreter regardless, so vector and jit
  // runs are genuine cross-tier differentials.
  KernelMode kernel_mode = KernelMode::kAuto;
  // Run the phase-4 cross-dataset join round (the shrinker turns this off
  // when the failure reproduces without it).
  bool with_joins = true;
};

struct DqReport {
  int cases = 0;         // query executions attempted
  int passed = 0;        // byte-identical fast-vs-reference
  int clean_errors = 0;  // typed adv::Error under faults (allowed)
  int partials = 0;      // partial results accepted (subset of reference)
  uint64_t io_retries = 0;     // transparent retry recoveries observed
  uint64_t afcs_pruned = 0;    // zone-map pruning observed on the fast path
  uint64_t fault_fires = 0;    // injections that actually fired
  // Human-readable failures; each line embeds the one-line replay command.
  std::vector<std::string> failures;

  bool ok() const { return failures.empty(); }
  void merge(const DqReport& o);
  std::string summary() const;
};

// The spec for a named campaign: "io", "net", "node", "agg", "zm",
// "sched", "jit".  Throws ValidationError for an unknown name.
std::string campaign_spec(const std::string& name);

// The query corpus run_seed derives for dataset `d` (n = queries_per_seed).
std::vector<std::string> seed_queries(const DqDataset& d, int n);

// Runs the corpus for one seed.  Deterministic given {seed, opts}.
DqReport run_seed(uint64_t seed, const DqOptions& opts);

// Runs an explicit case: a dataset shape plus a fixed query list.
// run_seed derives both from the seed and delegates here; the shrinker
// (dq_shrink.h) mutates them directly.
//
// Test hook: when the ADV_DQ_INJECT_MISMATCH env var is a non-empty
// string S, the fast-path result of every query whose SQL contains S is
// corrupted (one duplicated/forged row) before comparison — a guaranteed,
// deterministic mismatch for exercising the failure and shrink paths.
DqReport run_case(const DqDataset& d,
                  const std::vector<std::string>& queries,
                  const DqOptions& opts);

// The one-line replay command for a {seed, opts} combination.
std::string replay_command(uint64_t seed, const DqOptions& opts);

}  // namespace adv::dq
