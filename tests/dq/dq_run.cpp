#include "dq/dq_run.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <map>
#include <memory>
#include <numeric>
#include <sstream>
#include <vector>

#include "afc/reference.h"
#include "api/join_query.h"
#include "api/virtual_table.h"
#include "codegen/plan.h"
#include "common/cancel.h"
#include "common/env.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "common/tempdir.h"
#include "dq/dq_gen.h"
#include "faultz/faultz.h"
#include "storm/dist.h"
#include "storm/net.h"
#include "storm/node_daemon.h"

namespace adv::dq {

namespace {

// Exact multiset key of one row: the raw bit patterns, so "byte-identical"
// means exactly that (no tolerance).
std::string row_key(const expr::Table& t, std::size_t r) {
  std::string key(t.num_cols() * sizeof(double), '\0');
  for (std::size_t c = 0; c < t.num_cols(); ++c) {
    double v = t.at(r, c);
    std::memcpy(key.data() + c * sizeof(double), &v, sizeof v);
  }
  return key;
}

std::map<std::string, int> row_multiset(const expr::Table& t) {
  std::map<std::string, int> m;
  for (std::size_t r = 0; r < t.num_rows(); ++r) ++m[row_key(t, r)];
  return m;
}

// Which result columns of a bound query are bit-exact across independent
// implementations: everything except SUM and AVG, whose values depend on
// accumulator and fold order (docs/AGGREGATION.md — the engine itself is
// bit-identical across its own backends; the tolerance only covers the
// naive reference and the oracle).
std::vector<bool> exact_columns(const expr::BoundQuery& q) {
  if (!q.has_aggregates())
    return std::vector<bool>(q.result_columns().size(), true);
  std::vector<bool> exact;
  for (const auto& o : q.output_cols()) {
    bool e = true;
    if (o.is_agg) {
      const sql::AggFn fn =
          q.agg_items()[static_cast<std::size_t>(o.index)].fn;
      e = fn != sql::AggFn::kSum && fn != sql::AggFn::kAvg;
    }
    exact.push_back(e);
  }
  return exact;
}

// Relative tolerance for SUM/AVG: the corpus sums at most a few thousand
// float32-derived values in [0, 1), so plain-double vs exact-superaccumulator
// vs long-double folds agree to ~1e-13; 1e-9 leaves ample slack while still
// catching any real bug (a dropped or doubled row moves a sum by >= one
// representable payload, orders of magnitude past the tolerance).
constexpr double kAggRelTol = 1e-9;

uint64_t obits(double v) {
  uint64_t b;
  std::memcpy(&b, &v, sizeof b);
  return (b >> 63) ? ~b : b | (uint64_t{1} << 63);
}

// Pushdown comparison with per-column exactness: rows of both tables are
// aligned by sorting on the exact columns first (group keys are unique per
// row, so that order is total), then exact columns must match bit for bit
// and tolerant columns within kAggRelTol.
bool rows_match_tolerant(const expr::Table& a, const expr::Table& b,
                         const std::vector<bool>& exact) {
  if (a.num_rows() != b.num_rows() || a.num_cols() != b.num_cols())
    return false;
  const std::size_t nc = a.num_cols();
  std::vector<std::size_t> colord;
  for (std::size_t c = 0; c < nc; ++c)
    if (exact[c]) colord.push_back(c);
  for (std::size_t c = 0; c < nc; ++c)
    if (!exact[c]) colord.push_back(c);
  auto sorted = [&](const expr::Table& t) {
    std::vector<std::size_t> p(t.num_rows());
    std::iota(p.begin(), p.end(), std::size_t{0});
    std::sort(p.begin(), p.end(), [&](std::size_t x, std::size_t y) {
      for (std::size_t c : colord) {
        const uint64_t u = obits(t.at(x, c)), v = obits(t.at(y, c));
        if (u != v) return u < v;
      }
      return false;
    });
    return p;
  };
  const std::vector<std::size_t> pa = sorted(a), pb = sorted(b);
  for (std::size_t r = 0; r < a.num_rows(); ++r) {
    for (std::size_t c = 0; c < nc; ++c) {
      const double u = a.at(pa[r], c), v = b.at(pb[r], c);
      if (obits(u) == obits(v)) continue;
      if (exact[c] || std::isnan(u) || std::isnan(v)) return false;
      if (std::abs(u - v) >
          kAggRelTol * std::max({std::abs(u), std::abs(v), 1.0}))
        return false;
    }
  }
  return true;
}

// Arms the process fault plan for the query phase and guarantees disarm on
// every exit path (a leaked armed plan would poison later tests).
class CampaignScope {
 public:
  CampaignScope(uint64_t seed, const std::string& spec) : armed_(!spec.empty()) {
    if (armed_) {
      faultz::FaultPlan::instance().arm(seed, spec);
      // The reference run may have populated the process file cache with
      // mapped handles; drop them so the campaign's I/O actually traverses
      // the (hooked) open/map/pread path instead of cached mappings.
      FileCache::instance().clear();
    }
  }
  ~CampaignScope() {
    if (armed_) faultz::FaultPlan::instance().disarm();
  }
  CampaignScope(const CampaignScope&) = delete;
  CampaignScope& operator=(const CampaignScope&) = delete;

 private:
  bool armed_;
};

}  // namespace

bool rows_equal_exact(const expr::Table& a, const expr::Table& b) {
  return a.num_rows() == b.num_rows() && a.num_cols() == b.num_cols() &&
         row_multiset(a) == row_multiset(b);
}

bool rows_subset(const expr::Table& a, const expr::Table& b) {
  if (a.num_cols() != b.num_cols()) return false;
  std::map<std::string, int> bm = row_multiset(b);
  for (std::size_t r = 0; r < a.num_rows(); ++r) {
    auto it = bm.find(row_key(a, r));
    if (it == bm.end() || it->second == 0) return false;
    --it->second;
  }
  return true;
}

void DqReport::merge(const DqReport& o) {
  cases += o.cases;
  passed += o.passed;
  clean_errors += o.clean_errors;
  partials += o.partials;
  io_retries += o.io_retries;
  afcs_pruned += o.afcs_pruned;
  fault_fires += o.fault_fires;
  failures.insert(failures.end(), o.failures.begin(), o.failures.end());
}

std::string DqReport::summary() const {
  return format(
      "%d cases: %d identical, %d clean errors, %d partial, "
      "%llu retries healed, %llu afcs pruned, %llu faults fired, "
      "%zu FAILURES",
      cases, passed, clean_errors, partials,
      static_cast<unsigned long long>(io_retries),
      static_cast<unsigned long long>(afcs_pruned),
      static_cast<unsigned long long>(fault_fires), failures.size());
}

std::string campaign_spec(const std::string& name) {
  if (name == "io")
    return "pread.eintr=0.05,pread.eio=0.01,pread.short=0.01,"
           "mmap.fail=0.5,mmap.torn=0.005";
  if (name == "net")
    return "send.eintr=0.05,send.partial=0.10,send.reset=0.004,"
           "recv.eintr=0.05,recv.reset=0.004";
  if (name == "node") return "node.run=0.25";
  if (name == "agg") return "agg.merge=0.2";
  if (name == "zm") return "zonemap.load=1";
  if (name == "sched") return "serve.query=0.3";
  if (name == "serve") return "serve.cache=0.5";
  if (name == "jit") return "jit.compile=1";
  if (name == "none") return "";
  throw ValidationError("unknown fault campaign: " + name);
}

std::string replay_command(uint64_t seed, const DqOptions& opts) {
  std::ostringstream os;
  os << "adv_fuzz --seed " << seed;
  if (opts.queries_per_seed != 5) os << " --queries " << opts.queries_per_seed;
  if (!opts.fault_spec.empty())
    os << " --fault-spec '" << opts.fault_spec << "' --fault-seed "
       << opts.fault_seed;
  if (opts.with_server) os << " --server";
  if (opts.with_dist) os << " --dist";
  if (opts.partial_results) os << " --partial";
  if (opts.io_mode == IoMode::kPread) os << " --pread";
  if (opts.kernel_mode != KernelMode::kAuto)
    os << " --kernel " << to_string(opts.kernel_mode);
  return os.str();
}

std::vector<std::string> seed_queries(const DqDataset& d, int n) {
  // The corpus is fixed by the seed alone — the same queries run under
  // every campaign, so "correct rows or clean error" is judged against the
  // exact corpus the fault-free run validated.
  SplitMix64 qrng(mix64(d.seed ^ 0x5eed5));
  std::vector<std::string> queries;
  for (int i = 0; i < n; ++i) queries.push_back(random_query(d, qrng));
  return queries;
}

DqReport run_seed(uint64_t seed, const DqOptions& opts) {
  DqDataset d = make_dataset(seed);
  return run_case(d, seed_queries(d, opts.queries_per_seed), opts);
}

DqReport run_case(const DqDataset& d,
                  const std::vector<std::string>& queries,
                  const DqOptions& opts) {
  const uint64_t seed = d.seed;
  DqReport rep;
  const std::string replay = replay_command(seed, opts);
  auto fail = [&](const std::string& query, const std::string& what) {
    rep.failures.push_back(format("seed %llu",
                                  static_cast<unsigned long long>(seed)) +
                           " query \"" + query + "\": " + what +
                           "  [replay: " + replay + "]");
  };
  // Injected-mismatch test hook (see dq_run.h): corrupt the fast-path
  // rows of any query containing this substring.
  const std::string inject = env_str("ADV_DQ_INJECT_MISMATCH", "");

  // ---- Phase 1: generate (never under faults). --------------------------
  std::string text = d.descriptor();
  TempDir tmp("dq");
  meta::Descriptor desc = meta::parse_descriptor(text);
  codegen::DataServicePlan refplan(desc, d.name, tmp.str());
  write_files(d, refplan.model());
  {
    auto problems = refplan.verify_files();
    if (!problems.empty()) {
      fail("<generate>", "generated files failed verify: " + problems[0]);
      return rep;
    }
  }

  const std::string zm_dir = tmp.str() + "/zm";
  VirtualTable::Options vopts;
  vopts.build_zonemap = true;
  vopts.zonemap_dir = zm_dir;
  vopts.plan_cache_capacity = 8;
  vopts.partial_results = opts.partial_results;
  vopts.cluster.io_mode = opts.io_mode;
  vopts.cluster.kernel_mode = opts.kernel_mode;
  VirtualTable vt = VirtualTable::open(text, d.name, tmp.str(), vopts);

  // ---- Phase 2: reference answers (never under faults). -----------------
  // Per-query comparison mode: SUM/AVG columns of aggregate queries carry
  // a tolerance between *independent* implementations (reference vs oracle
  // vs engine); all other columns — and all backends of the engine against
  // each other — stay bit-exact.
  std::vector<expr::Table> want;
  std::vector<bool> is_pushdown;
  std::vector<std::vector<bool>> exact;
  auto matches_ref = [&](const expr::Table& got, std::size_t i) {
    const std::vector<bool>& ex = exact[i];
    return std::find(ex.begin(), ex.end(), false) == ex.end()
               ? rows_equal_exact(got, want[i])
               : rows_match_tolerant(got, want[i], ex);
  };
  for (const std::string& sql : queries) {
    expr::BoundQuery q = refplan.bind(sql);
    is_pushdown.push_back(q.is_pushdown());
    exact.push_back(exact_columns(q));
    // Differential planner check: the optimized AFC planner must emit
    // exactly the chunk sets the Figure 5 literal reference emits.
    if (afc::reference::flatten(refplan.index_fn(q)) !=
        afc::reference::plan_reference(refplan.model(), q))
      fail(sql, "optimized planner diverged from Figure 5 reference");
    expr::Table ref = refplan.execute(q);
    // The naive executor itself is cross-checked against the generator's
    // cell oracle, so "reference" is not circular.
    expr::Table truth = oracle_rows(d, q);
    want.push_back(std::move(ref));
    if (!matches_ref(truth, want.size() - 1))
      fail(sql, format("reference executor returned %zu rows, oracle %zu",
                       want.back().num_rows(), truth.num_rows()));
  }
  if (!rep.failures.empty()) return rep;

  // Optional server endpoint (opened before arming: binding is not under
  // test, the query path is).
  std::unique_ptr<storm::QueryServer> server;
  std::unique_ptr<storm::QueryClient> client;
  if (opts.with_server) {
    auto splan =
        std::make_shared<codegen::DataServicePlan>(desc, d.name, tmp.str());
    storm::ClusterOptions copts;
    copts.io_mode = opts.io_mode;
    copts.kernel_mode = opts.kernel_mode;
    // Result cache on: the second served round below replays each query
    // from the cache, so the differential also proves cached rows are
    // bit-identical to a live execution — including under the serve.cache
    // poisoning campaign.
    serve::ServeOptions vsopts;
    vsopts.enable_result_cache = true;
    server = std::make_unique<storm::QueryServer>(
        splan, copts, 0, vt.chunk_filter(), sched::SchedulerOptions{}, vsopts);
    client = std::make_unique<storm::QueryClient>("127.0.0.1", server->port());
  }

  // Optional distribution backend: one in-process NodeDaemon per virtual
  // node behind a DistCoordinator, pruning with the same zone map as the
  // fast path.  Also opened before arming; under a campaign the armed
  // plan is process-wide, so daemon-side injections exercise the
  // coordinator's typed-failure and bounded-retry paths.
  std::vector<std::unique_ptr<storm::NodeDaemon>> daemons;
  std::unique_ptr<storm::DistCoordinator> dist;
  if (opts.with_dist) {
    auto dplan =
        std::make_shared<codegen::DataServicePlan>(desc, d.name, tmp.str());
    std::vector<storm::ShardConfig> shards;
    for (int n = 0; n < dplan->model().num_nodes(); ++n) {
      storm::NodeDaemonOptions nopts;
      nopts.node_id = n;
      nopts.cluster.io_mode = opts.io_mode;
      nopts.cluster.kernel_mode = opts.kernel_mode;
      nopts.filter = vt.chunk_filter();
      daemons.push_back(std::make_unique<storm::NodeDaemon>(dplan, nopts));
      shards.push_back(
          {n, {{"127.0.0.1", daemons.back()->port()}}});
    }
    storm::DistOptions dopts;
    dopts.deadline_seconds = opts.deadline_seconds;
    dopts.liveness_timeout_seconds = std::max(5.0, opts.deadline_seconds);
    dopts.allow_partial_results = opts.partial_results;
    dist = std::make_unique<storm::DistCoordinator>(std::move(shards), dopts);
  }

  // ---- Phase 3: the fast path, optionally under the campaign. -----------
  {
    CampaignScope campaign(opts.fault_seed, opts.fault_spec);
    for (std::size_t i = 0; i < queries.size(); ++i) {
      const std::string& sql = queries[i];
      // On a clean run the engine's backends must agree bit for bit with
      // each other (the SUM/AVG tolerance is only for the independent
      // references): the first fast-path answer anchors the comparison.
      expr::Table engine_got;
      bool have_engine = false;
      // Twice per query: the second run replays through the plan cache.
      for (int round = 0; round < 2; ++round) {
        ++rep.cases;
        Stopwatch sw;
        try {
          CancelToken token;
          token.set_deadline_after(opts.deadline_seconds);
          storm::QueryResult r = vt.query_detailed(sql, {}, &token);
          rep.io_retries += r.total_io_retries();
          rep.afcs_pruned += r.total_afcs_pruned();
          expr::Table got = r.merged();
          if (!inject.empty() && sql.find(inject) != std::string::npos) {
            // Injected-mismatch hook: forge one extra row (a duplicate of
            // row 0, or zeros on an empty result) so the comparison below
            // deterministically fails for this query.
            std::vector<double> forged(got.num_cols(), 0.0);
            for (std::size_t c = 0; got.num_rows() && c < got.num_cols();
                 ++c)
              forged[c] = got.at(0, c);
            got.append_row(forged.data());
          }
          if (matches_ref(got, i)) {
            ++rep.passed;
            if (opts.fault_spec.empty() && !have_engine) {
              engine_got = got;
              have_engine = true;
            } else if (have_engine && !rows_equal_exact(got, engine_got)) {
              fail(sql, format("plan-cache replay diverged bit-for-bit "
                               "(round %d)", round));
            }
          } else if (opts.partial_results && !r.failed_nodes().empty() &&
                     (is_pushdown[i] || rows_subset(got, want[i]))) {
            // Partial pushdown results are aggregates over the surviving
            // nodes' data — not a row subset of the full answer, so only
            // the typed casualty is checked, not the content.
            ++rep.partials;
          } else {
            fail(sql, format("fast path returned %zu rows, reference %zu "
                             "(round %d)",
                             got.num_rows(), want[i].num_rows(), round));
          }
        } catch (const Error& e) {
          // Typed failure: acceptable only while a campaign is armed.
          if (opts.fault_spec.empty())
            fail(sql, std::string("unexpected error: ") + e.what());
          else
            ++rep.clean_errors;
        } catch (const std::exception& e) {
          fail(sql, std::string("untyped exception escaped: ") + e.what());
        }
        double elapsed = sw.elapsed_seconds();
        if (elapsed > 2 * opts.deadline_seconds + 5)
          fail(sql, format("hang: %.1fs wall against a %.1fs deadline",
                           elapsed, opts.deadline_seconds));
      }

      // Twice per query: the second round is served from the result cache
      // (or re-executed when the campaign poisoned the entry) and must be
      // bit-identical either way.
      if (client) {
        for (int round = 0; round < 2; ++round) {
          ++rep.cases;
          Stopwatch sw;
          try {
            storm::QueryOptions qopts;
            qopts.deadline_seconds = opts.deadline_seconds;
            storm::RemoteResult rr = client->execute(sql, {}, qopts);
            expr::Table got = rr.merged();
            if (matches_ref(got, i)) {
              ++rep.passed;
              if (have_engine && !rows_equal_exact(got, engine_got))
                fail(sql, format("served rows differ bit-for-bit from the "
                                 "in-process engine (round %d%s)",
                                 round,
                                 rr.sched.served_from_cache ? ", cached" : ""));
            } else {
              fail(sql,
                   format("served query returned %llu rows, reference %zu "
                          "(round %d)",
                          static_cast<unsigned long long>(rr.total_rows()),
                          want[i].num_rows(), round));
            }
          } catch (const Error& e) {
            if (opts.fault_spec.empty())
              fail(sql, std::string("unexpected server error: ") + e.what());
            else
              ++rep.clean_errors;
          } catch (const std::exception& e) {
            fail(sql, std::string("untyped exception escaped: ") + e.what());
          }
          double elapsed = sw.elapsed_seconds();
          if (elapsed > 2 * opts.deadline_seconds + 5)
            fail(sql,
                 format("served hang: %.1fs wall against a %.1fs deadline",
                        elapsed, opts.deadline_seconds));
        }
      }

      if (dist) {
        ++rep.cases;
        Stopwatch sw;
        try {
          storm::DistResult dr = dist->run(sql);
          expr::Table got = dr.merged();
          if (matches_ref(got, i)) {
            ++rep.passed;
            if (have_engine && dr.casualties.empty() &&
                !rows_equal_exact(got, engine_got))
              fail(sql, "dist backend rows differ bit-for-bit from the "
                        "in-process engine");
          } else if (opts.partial_results && dr.partial() &&
                   (is_pushdown[i] || rows_subset(got, want[i])))
            ++rep.partials;
          else
            fail(sql,
                 format("dist backend returned %llu rows, reference %zu",
                        static_cast<unsigned long long>(dr.total_rows()),
                        want[i].num_rows()));
        } catch (const Error& e) {
          if (opts.fault_spec.empty())
            fail(sql, std::string("unexpected dist error: ") + e.what());
          else
            ++rep.clean_errors;
        } catch (const std::exception& e) {
          fail(sql, std::string("untyped exception escaped: ") + e.what());
        }
        double elapsed = sw.elapsed_seconds();
        if (elapsed > 2 * opts.deadline_seconds + 5)
          fail(sql, format("dist hang: %.1fs wall against a %.1fs deadline",
                           elapsed, opts.deadline_seconds));
      }
    }
    if (!opts.fault_spec.empty())
      rep.fault_fires = faultz::FaultPlan::instance().total_fires();
  }

  // ---- Phase 4: cross-dataset joins (clean path, always disarmed). ------
  // A second generated dataset joins the first on their shared implicit
  // dimensions (api/join_query.h); the reference is a nested-loop join of
  // the two sides' cell oracles, so the planner-level key pruning and the
  // hash merge are both under differential test.  Runs after the campaign
  // scope: generation may never happen under faults, and the join contract
  // is exact rows regardless of which campaign phase 3 ran.
  if (opts.with_joins) {
    DqDataset db = make_dataset(mix64(seed ^ 0xb0b0ULL));
    db.name = "DqB";
    TempDir tmpb("dqb");
    meta::Descriptor bdesc = meta::parse_descriptor(db.descriptor());
    codegen::DataServicePlan brefplan(bdesc, "DqB", tmpb.str());
    write_files(db, brefplan.model());
    VirtualTable::Options bvopts;
    bvopts.cluster.io_mode = opts.io_mode;
    bvopts.cluster.kernel_mode = opts.kernel_mode;
    VirtualTable vtb = VirtualTable::open(db.descriptor(), "DqB", tmpb.str(),
                                          bvopts);
    SplitMix64 jrng(mix64(seed ^ 0x10abcafeULL));
    for (int j = 0; j < 2; ++j) {
      DqJoinCase jc = random_join_query(d, db, jrng);
      ++rep.cases;
      try {
        expr::Table want_j =
            oracle_join(oracle_rows(d, refplan.bind(jc.left_sql)),
                        oracle_rows(db, brefplan.bind(jc.right_sql)),
                        jc.keys);
        JoinStats jst;
        expr::Table got = join_query(vt, vtb, jc.sql, &jst);
        if (!rows_equal_exact(got, want_j)) {
          fail(jc.sql, format("join returned %zu rows, oracle %zu",
                              got.num_rows(), want_j.num_rows()));
          continue;
        }
        ++rep.passed;
        // The dist round re-runs the same join with the A-side scan routed
        // through the coordinator (JoinSideExec is the seam) and must stay
        // bit-identical.
        if (dist) {
          ++rep.cases;
          sql::SelectQuery jq = sql::parse_select(jc.sql);
          auto exec = [&](int side, const std::string& side_sql) {
            return iequals(jq.tables[static_cast<std::size_t>(side)].table,
                           d.name)
                       ? dist->run(side_sql).merged()
                       : vtb.query(side_sql);
          };
          expr::Table dgot =
              execute_join(jq, vt.plan(), vtb.plan(), exec, nullptr);
          if (rows_equal_exact(dgot, want_j))
            ++rep.passed;
          else
            fail(jc.sql, format("dist-routed join returned %zu rows, "
                                "oracle %zu",
                                dgot.num_rows(), want_j.num_rows()));
        }
      } catch (const std::exception& e) {
        fail(jc.sql, std::string("join phase error: ") + e.what());
      }
    }
  }

  // Teardown (server shutdown, VT destruction) runs disarmed.
  return rep;
}

}  // namespace adv::dq
