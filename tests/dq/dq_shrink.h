// Greedy failure minimizer for the differential query-fuzz harness.
//
// A failing seed reproduces with `adv_fuzz --seed N`, but the generated
// case can be large: several queries, a multi-node dataset, half a dozen
// layout flags.  `adv_fuzz --shrink N` drives shrink_seed(), which
// repeatedly re-runs the case through run_case() while greedily removing
// anything the failure does not need:
//
//   1. the cross-dataset join round (DqOptions::with_joins), if the
//      failure reproduces without it;
//   2. whole queries, until only the failing ones remain;
//   3. query structure, at the AST level: top-level WHERE conjuncts,
//      ORDER BY, and LIMIT are dropped one at a time and the query
//      re-serialized (never edited textually);
//   4. dataset shape: integer dimensions walk down (halve, then
//      decrement) and layout flags reset toward the plainest layout.
//
// A candidate is accepted only when run_case still *records* a failure —
// a candidate that throws (e.g. a query referencing a dimension the
// shrunken dataset no longer has) is rejected, keeping the minimized case
// anchored to the original kind of failure.  Everything re-runs the real
// harness, so the result is guaranteed to still fail.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "dq/dq_run.h"

namespace adv::dq {

struct DqShrinkResult {
  DqDataset dataset;                 // minimized shape
  std::vector<std::string> queries;  // minimized corpus
  DqOptions opts;                    // possibly reduced (joins off)
  DqReport report;                   // run_case report of the minimum
  bool failed_initially = false;     // seed reproduced before shrinking
  int attempts = 0;                  // candidate runs tried
  int accepted = 0;                  // candidates that kept the failure
};

// Minimizes the failing case for `seed`.  `log`, when set, receives one
// line per accepted shrink step.  Deterministic given {seed, opts} and
// the ADV_DQ_INJECT_MISMATCH hook state (dq_run.h).
DqShrinkResult shrink_seed(
    uint64_t seed, const DqOptions& opts,
    const std::function<void(const std::string&)>& log = {});

// One-line rendering of the shape knobs ("nodes=2 rels=1 ... colmajor").
std::string shape_string(const DqDataset& d);

}  // namespace adv::dq
