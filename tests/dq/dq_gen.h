// Random layout + query generator for the differential fuzz harness.
//
// Each seed deterministically produces one synthetic dataset — a random
// layout descriptor (nested LOOPs, implicit file-name attributes, vertical
// partitioning, transposed record loops, headers, multi-node distribution)
// together with the matching data files and a per-cell value oracle — and a
// stream of random SQL (ranges, BETWEEN, IN lists, OR/NOT combinations,
// filter functions, GROUP BY aggregates, ORDER BY ... LIMIT top-k).
// Everything is a pure function of the seed, so any failure replays with
// `adv_fuzz --seed N`.
#pragma once

#include <cstdint>
#include <string>

#include "afc/dataset_model.h"
#include "common/rng.h"
#include "expr/predicate.h"
#include "expr/table.h"

namespace adv::dq {

// The randomized layout shape.  Mirrors the paper's experiment axes: which
// dimensions live in file names vs LOOPs, loop nesting order, records vs
// per-variable arrays, vertical partitioning, header/marker fields.
struct DqDataset {
  int nodes = 1;
  int rels = 1;       // REL in 0..rels-1
  int timesteps = 1;  // TIME in 1..timesteps
  int grid_per_node = 1;
  int payloads = 1;  // P1..Pn (float32)

  bool rel_in_filename = false;
  bool time_in_filename = false;
  bool time_outer = true;
  bool transposed = false;  // TIME is the record loop, GRID enumerated
  bool arrays = false;      // per-variable arrays vs records
  bool colmajor = false;    // COLMAJOR record loop (attribute-contiguous)
  bool store_dims = false;  // REL/TIME also stored in the records
  bool headers = false;     // file header + per-chunk markers
  int num_leaves = 1;       // vertical partition of the payloads

  // Titan-style spatio-temporal chunking: the per-node grid becomes a
  // regular LAT x LON grid of chunks of cells_per_chunk records each, with
  // LAT/LON implicit structure-loop attributes in the schema (so queries
  // can prune whole spatial chunks).  grid_per_node is then
  // lat_chunks * lon_chunks * cells_per_chunk.
  bool st_grid = false;
  int lat_chunks = 1;  // per node; global LAT spans nodes * lat_chunks
  int lon_chunks = 1;
  int cells_per_chunk = 1;

  // Dataset name in descriptor and SQL (two datasets join by alias).
  std::string name = "DqData";

  uint64_t seed = 0;

  // The descriptor text for this shape.
  std::string descriptor() const;
  // Ground-truth cell value, recomputable without touching any file.
  double value(const std::string& attr, int rel, int time, int gid) const;
  uint64_t total_rows() const {
    return static_cast<uint64_t>(nodes) * rels * timesteps * grid_per_node;
  }
};

// The dataset for `seed`.
DqDataset make_dataset(uint64_t seed);

// Writes every concrete file of `model` with the dataset's oracle values.
void write_files(const DqDataset& d, const afc::DatasetModel& model);

// Brute-force row oracle: enumerates the dimension space and evaluates the
// bound predicate per row.  Independent of planner, extractor, and layout.
// For pushdown queries (aggregates / ORDER BY ... LIMIT) it then applies
// its own aggregation and top-k — a third implementation, independent of
// both src/agg and the naive reference in codegen/plan.cpp, with
// long-double SUM/AVG accumulation (compare those columns with tolerance;
// keys, COUNT, MIN/MAX, and the LIMIT cut are exact).
expr::Table oracle_rows(const DqDataset& d, const expr::BoundQuery& q);

// A generated cross-dataset join case (api/join_query.h): the two-table
// join SQL plus the two single-table side queries whose oracle rows a
// nested-loop reference joins on `keys`.  The side queries carry exactly
// the single-side conjuncts of the join WHERE (unqualified), so
// oracle_join(oracle_rows(left), oracle_rows(right)) is the ground truth
// for the full join.
struct DqJoinCase {
  std::string sql;
  std::string left_sql, right_sql;  // FROM-order side queries
  std::vector<std::string> keys;    // shared implicit key attrs
};

// One random equi-join between `a` (alias A) and `b` (alias B) on their
// shared implicit dimensions (REL and/or TIME), with 0..2 alias-qualified
// single-side conjuncts per side drawn from the same condition grammar as
// single-table queries.
DqJoinCase random_join_query(const DqDataset& a, const DqDataset& b,
                             SplitMix64& rng);

// Brute-force nested-loop equi-join of two oracle side tables on the named
// key columns, emitting left columns then right columns per match — the
// layout- and engine-independent reference for DqJoinCase.
expr::Table oracle_join(const expr::Table& left, const expr::Table& right,
                        const std::vector<std::string>& keys);

// One random query.  Row-shaped queries are always SELECT * (row
// multiplicity over projected-away dimensions is layout-defined, so only
// full rows compare meaningfully); aggregate shapes collapse multiplicity
// deterministically, so they project GROUP BY keys plus
// COUNT/SUM/AVG/MIN/MAX items, optionally ordered and limited.  ORDER BY
// only ever names exact outputs (keys, COUNT, MIN, MAX): SUM/AVG carry a
// float tolerance across implementations, and a LIMIT cut on a tolerant
// column could keep different rows.  Predicates draw from ranges, BETWEEN,
// IN lists, OR/NOT, and the built-in filter functions (ABSV, MAG2, SPEED).
std::string random_query(const DqDataset& d, SplitMix64& rng);

}  // namespace adv::dq
