// Tests for the greedy failure minimizer (dq_shrink.h), driven by the
// ADV_DQ_INJECT_MISMATCH hook: with a guaranteed mismatch injected into
// the fast path, the shrinker must (a) reproduce the failure and (b)
// strictly minimize the case — one query, no WHERE clause, every dataset
// dimension walked down to 1, every layout flag cleared.
#include <gtest/gtest.h>

#include <cstdlib>

#include "dq/dq_shrink.h"

namespace adv::dq {
namespace {

// RAII env guard so a failing assertion cannot leak the hook into other
// tests in this binary.
class InjectGuard {
 public:
  explicit InjectGuard(const char* needle) {
    ::setenv("ADV_DQ_INJECT_MISMATCH", needle, 1);
  }
  ~InjectGuard() { ::unsetenv("ADV_DQ_INJECT_MISMATCH"); }
};

TEST(DqShrinkTest, InjectedMismatchReproducesAndMinimizes) {
  InjectGuard inject("SELECT");  // every query's fast path is corrupted
  DqOptions opts;
  opts.queries_per_seed = 3;
  const DqDataset original = make_dataset(2);
  DqShrinkResult res = shrink_seed(2, opts);

  ASSERT_TRUE(res.failed_initially);
  EXPECT_FALSE(res.report.ok());  // the minimized case still fails
  EXPECT_GT(res.accepted, 0);
  EXPECT_GE(res.attempts, res.accepted);

  // Corpus minimized to a single query with no residual structure the
  // failure does not need.
  ASSERT_EQ(res.queries.size(), 1u);
  EXPECT_EQ(res.queries[0].find(" WHERE "), std::string::npos)
      << res.queries[0];

  // Every dimension is at (or below) the original, and the universal
  // mismatch means they all reach the floor.
  EXPECT_EQ(res.dataset.nodes, 1);
  EXPECT_EQ(res.dataset.rels, 1);
  EXPECT_EQ(res.dataset.timesteps, 1);
  EXPECT_EQ(res.dataset.payloads, 1);
  EXPECT_EQ(res.dataset.num_leaves, 1);
  EXPECT_LE(res.dataset.grid_per_node, original.grid_per_node);
  EXPECT_FALSE(res.dataset.st_grid);
  EXPECT_FALSE(res.dataset.headers);
  EXPECT_FALSE(res.dataset.colmajor);
  EXPECT_FALSE(res.dataset.arrays);
  // The failure reproduces without the cross-dataset join round.
  EXPECT_FALSE(res.opts.with_joins);
}

TEST(DqShrinkTest, InjectTargetsOnlyMatchingQueries) {
  // A needle that matches nothing leaves the corpus passing: the hook is
  // a substring filter, not a blanket switch.
  InjectGuard inject("NO_SUCH_SUBSTRING_IN_ANY_QUERY");
  DqOptions opts;
  opts.queries_per_seed = 2;
  DqShrinkResult res = shrink_seed(4, opts);
  EXPECT_FALSE(res.failed_initially);
  EXPECT_TRUE(res.report.ok());
  EXPECT_EQ(res.accepted, 0);
}

TEST(DqShrinkTest, CleanSeedHasNothingToShrink) {
  DqOptions opts;
  opts.queries_per_seed = 2;
  DqShrinkResult res = shrink_seed(6, opts);
  EXPECT_FALSE(res.failed_initially);
  EXPECT_TRUE(res.report.ok());
  // Untouched: the result is exactly the seed's own case.
  EXPECT_EQ(res.queries.size(), 2u);
  EXPECT_EQ(shape_string(res.dataset), shape_string(make_dataset(6)));
}

}  // namespace
}  // namespace adv::dq
