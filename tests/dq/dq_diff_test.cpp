// Differential query fuzz: random layouts + random SQL, fast path vs
// naive reference, byte-identical rows (no faults — clean-path equivalence).
//
// Reproducibility: every failure line embeds `adv_fuzz --seed N`, and the
// corpus is env-steerable when running this binary directly:
//   ADV_FUZZ_SEED=N   pin the corpus to exactly one seed
//   ADV_FUZZ_ITERS=K  number of seeds (default 22; 5 queries x 2 rounds
//                     each = 10 comparisons per seed)
//   ADV_DQ_QUERIES=M  queries per seed
// (Env overrides change the test-case list, so use them on the test binary
// itself, not through a ctest name filter — see docs/TESTING.md.)
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <tuple>

#include "common/env.h"
#include "dq/dq_run.h"

namespace adv::dq {
namespace {

uint64_t seed_base() {
  return static_cast<uint64_t>(env_int("ADV_FUZZ_SEED", 1));
}
uint64_t seed_count() {
  if (env_int("ADV_FUZZ_SEED", -1) >= 0) return 1;  // pinned: replay one
  return static_cast<uint64_t>(env_int("ADV_FUZZ_ITERS", 22));
}

// Every seed runs under all three kernel tiers: the reference executor is
// pinned to the interpreter inside run_seed, so the interp leg checks the
// extractor's row-at-a-time path against the naive executor while the
// vector and jit legs are genuine cross-tier differentials over the exact
// same corpus.
class DqDiffTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, KernelMode>> {};

TEST_P(DqDiffTest, FastPathMatchesReference) {
  DqOptions opts;
  opts.queries_per_seed =
      static_cast<int>(env_int("ADV_DQ_QUERIES", 5));
  opts.kernel_mode = std::get<1>(GetParam());
  DqReport rep = run_seed(std::get<0>(GetParam()), opts);
  for (const std::string& f : rep.failures) ADD_FAILURE() << f;
  EXPECT_EQ(rep.passed, rep.cases) << rep.summary();
  // Clean path: no query may end in an error of any kind.
  EXPECT_EQ(rep.clean_errors, 0) << rep.summary();
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, DqDiffTest,
    ::testing::Combine(::testing::Range<uint64_t>(seed_base(),
                                                  seed_base() + seed_count()),
                       ::testing::Values(KernelMode::kInterp,
                                         KernelMode::kVector,
                                         KernelMode::kJit)),
    [](const ::testing::TestParamInfo<DqDiffTest::ParamType>& info) {
      return std::to_string(std::get<0>(info.param)) + "_" +
             to_string(std::get<1>(info.param));
    });

// A smaller corpus round-trips through the v2 wire protocol as well: the
// served rows must match the same reference.
class DqServedDiffTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DqServedDiffTest, ServedRowsMatchReference) {
  DqOptions opts;
  opts.queries_per_seed = 3;
  opts.with_server = true;
  DqReport rep = run_seed(GetParam(), opts);
  for (const std::string& f : rep.failures) ADD_FAILURE() << f;
  EXPECT_EQ(rep.passed, rep.cases) << rep.summary();
}

INSTANTIATE_TEST_SUITE_P(Seeds, DqServedDiffTest,
                         ::testing::Range<uint64_t>(
                             seed_base(), seed_base() +
                                              std::min<uint64_t>(
                                                  seed_count(), 4)));

}  // namespace
}  // namespace adv::dq
