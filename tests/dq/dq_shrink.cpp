#include "dq/dq_shrink.h"

#include <algorithm>
#include <exception>
#include <sstream>
#include <utility>

#include "common/string_util.h"
#include "sql/ast.h"

namespace adv::dq {

namespace {

struct Shrinker {
  DqShrinkResult r;
  const std::function<void(const std::string&)>& log;

  void note(const std::string& line) {
    if (log) log(line);
  }

  // Runs a candidate; accepts it (and installs it as the new minimum)
  // only when the harness still records a failure.
  bool try_case(const DqDataset& d, const std::vector<std::string>& qs,
                const std::string& what) {
    ++r.attempts;
    DqReport rep;
    try {
      rep = run_case(d, qs, r.opts);
    } catch (const std::exception&) {
      return false;  // different failure mode; reject
    }
    if (rep.ok()) return false;
    r.dataset = d;
    r.queries = qs;
    r.report = std::move(rep);
    ++r.accepted;
    note("kept: " + what);
    return true;
  }

  // Drop whole queries, last first (later queries depend on nothing).
  bool shrink_queries() {
    bool changed = false;
    for (std::size_t i = r.queries.size(); i-- > 0;) {
      if (r.queries.size() == 1) break;
      std::vector<std::string> qs = r.queries;
      qs.erase(qs.begin() + static_cast<std::ptrdiff_t>(i));
      if (try_case(r.dataset, qs, format("dropped query %zu", i)))
        changed = true;
    }
    return changed;
  }

  // AST-level simplification of each surviving query: drop top-level
  // WHERE conjuncts, then ORDER BY, then LIMIT.
  bool shrink_query_asts() {
    bool changed = false;
    for (std::size_t i = 0; i < r.queries.size(); ++i) {
      sql::SelectQuery q;
      try {
        q = sql::parse_select(r.queries[i]);
      } catch (const std::exception&) {
        continue;
      }
      std::vector<sql::BoolExprPtr> conj;
      std::function<void(const sql::BoolExprPtr&)> flatten =
          [&](const sql::BoolExprPtr& e) {
            if (!e) return;
            if (e->kind == sql::BoolExpr::Kind::kAnd) {
              flatten(e->a);
              flatten(e->b);
              return;
            }
            conj.push_back(e);
          };
      flatten(q.where);
      auto with = [&](const sql::SelectQuery& cand) {
        std::vector<std::string> qs = r.queries;
        qs[i] = cand.to_string();
        return try_case(r.dataset, qs,
                        format("query %zu -> %s", i, qs[i].c_str()));
      };
      for (std::size_t c = conj.size(); c-- > 0;) {
        sql::SelectQuery cand = q;
        cand.where = nullptr;
        for (std::size_t k = 0; k < conj.size(); ++k) {
          if (k == c) continue;
          cand.where = cand.where
                           ? sql::BoolExpr::make_and(cand.where, conj[k])
                           : conj[k];
        }
        if (with(cand)) {
          q = cand;
          conj.erase(conj.begin() + static_cast<std::ptrdiff_t>(c));
          changed = true;
        }
      }
      if (!q.order_by.empty()) {
        sql::SelectQuery cand = q;
        cand.order_by.clear();
        if (with(cand)) {
          q = cand;
          changed = true;
        }
      }
      if (q.limit >= 0) {
        sql::SelectQuery cand = q;
        cand.limit = -1;
        if (with(cand)) changed = true;
      }
    }
    return changed;
  }

  // Walk one integer knob down: halve toward `lo`, then decrement.
  bool shrink_int(int DqDataset::*field, int lo, const char* name) {
    bool changed = false;
    for (;;) {
      const int cur = r.dataset.*field;
      if (cur <= lo) return changed;
      DqDataset d = r.dataset;
      d.*field = std::max(lo, cur / 2);
      fixup(d);
      if (!try_case(d, r.queries, format("%s %d -> %d", name, cur,
                                         d.*field))) {
        d = r.dataset;
        d.*field = cur - 1;
        fixup(d);
        if (!try_case(d, r.queries,
                      format("%s %d -> %d", name, cur, d.*field)))
          return changed;
      }
      changed = true;
    }
  }

  bool clear_flag(bool DqDataset::*field, const char* name) {
    if (!(r.dataset.*field)) return false;
    DqDataset d = r.dataset;
    d.*field = false;
    fixup(d);
    return try_case(d, r.queries, std::string("cleared ") + name);
  }

  // Keeps dependent knobs consistent after a mutation (the same
  // invariants make_dataset establishes).
  static void fixup(DqDataset& d) {
    if (d.st_grid) {
      d.transposed = false;
      d.grid_per_node = d.lat_chunks * d.lon_chunks * d.cells_per_chunk;
    } else {
      d.lat_chunks = d.lon_chunks = d.cells_per_chunk = 1;
    }
    if (d.colmajor) d.arrays = false;
    if (d.num_leaves > d.payloads) d.num_leaves = d.payloads;
  }

  bool shrink_dataset() {
    bool changed = false;
    for (auto [f, name] :
         std::initializer_list<std::pair<int DqDataset::*, const char*>>{
             {&DqDataset::nodes, "nodes"},
             {&DqDataset::rels, "rels"},
             {&DqDataset::timesteps, "timesteps"},
             {&DqDataset::payloads, "payloads"},
             {&DqDataset::num_leaves, "num_leaves"},
             {&DqDataset::lat_chunks, "lat_chunks"},
             {&DqDataset::lon_chunks, "lon_chunks"},
             {&DqDataset::cells_per_chunk, "cells_per_chunk"}}) {
      if (shrink_int(f, 1, name)) changed = true;
    }
    if (!r.dataset.st_grid &&
        shrink_int(&DqDataset::grid_per_node, 1, "grid_per_node"))
      changed = true;
    for (auto [f, name] :
         std::initializer_list<std::pair<bool DqDataset::*, const char*>>{
             {&DqDataset::st_grid, "st_grid"},
             {&DqDataset::headers, "headers"},
             {&DqDataset::store_dims, "store_dims"},
             {&DqDataset::colmajor, "colmajor"},
             {&DqDataset::arrays, "arrays"},
             {&DqDataset::transposed, "transposed"},
             {&DqDataset::time_in_filename, "time_in_filename"},
             {&DqDataset::rel_in_filename, "rel_in_filename"}}) {
      if (clear_flag(f, name)) changed = true;
    }
    return changed;
  }
};

}  // namespace

std::string shape_string(const DqDataset& d) {
  std::ostringstream os;
  os << "nodes=" << d.nodes << " rels=" << d.rels << " timesteps="
     << d.timesteps << " grid=" << d.grid_per_node << " payloads="
     << d.payloads << " leaves=" << d.num_leaves;
  if (d.st_grid)
    os << " st_grid(" << d.lat_chunks << "x" << d.lon_chunks << "x"
       << d.cells_per_chunk << ")";
  for (auto [on, name] :
       std::initializer_list<std::pair<bool, const char*>>{
           {d.rel_in_filename, "rel_in_filename"},
           {d.time_in_filename, "time_in_filename"},
           {d.transposed, "transposed"},
           {d.arrays, "arrays"},
           {d.colmajor, "colmajor"},
           {d.store_dims, "store_dims"},
           {d.headers, "headers"}})
    if (on) os << " " << name;
  return os.str();
}

DqShrinkResult shrink_seed(
    uint64_t seed, const DqOptions& opts,
    const std::function<void(const std::string&)>& log) {
  Shrinker s{DqShrinkResult{}, log};
  s.r.opts = opts;
  s.r.dataset = make_dataset(seed);
  s.r.queries = seed_queries(s.r.dataset, opts.queries_per_seed);

  ++s.r.attempts;
  s.r.report = run_case(s.r.dataset, s.r.queries, s.r.opts);
  s.r.failed_initially = !s.r.report.ok();
  if (!s.r.failed_initially) return s.r;

  // Drop the join round first when the failure survives without it —
  // every later candidate then runs the smaller harness.
  if (s.r.opts.with_joins) {
    DqOptions without = s.r.opts;
    without.with_joins = false;
    DqOptions keep = s.r.opts;
    s.r.opts = without;
    if (s.try_case(s.r.dataset, s.r.queries, "disabled join round"))
      s.note("join round not needed");
    else
      s.r.opts = keep;
  }

  // Greedy fixed point over all shrink passes (bounded: every accepted
  // step strictly shrinks something, so this terminates quickly).
  for (bool changed = true; changed;) {
    changed = false;
    if (s.shrink_queries()) changed = true;
    if (s.shrink_query_asts()) changed = true;
    if (s.shrink_dataset()) changed = true;
  }
  return s.r;
}

}  // namespace adv::dq
