// Fault campaigns over the differential corpus, plus targeted recovery
// tests for each degradation mechanism: per-AFC retry, partial results,
// zone-map corruption fallback, and clean scheduler-side failure.
//
// The invariant under every campaign: correct rows, or a clean typed
// adv::Error, within the deadline.  Never wrong rows, never a hang, never
// an untyped exception.  Replay any failure with the embedded
// `adv_fuzz --seed N --fault-spec ...` command.
#include <gtest/gtest.h>

#include <fstream>

#include "api/virtual_table.h"
#include "common/tempdir.h"
#include "dq/dq_gen.h"
#include "dq/dq_run.h"
#include "faultz/faultz.h"
#include "storm/net.h"
#include "zonemap/zonemap.h"

namespace adv::dq {
namespace {

// ---------------------------------------------------------------------------
// Campaigns over the shared corpus.

class CampaignTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CampaignTest, IoFaults) {
  DqOptions opts;
  opts.fault_spec = campaign_spec("io");
  opts.fault_seed = GetParam();
  DqReport rep = run_seed(GetParam(), opts);
  for (const std::string& f : rep.failures) ADD_FAILURE() << f;
  EXPECT_EQ(rep.cases, rep.passed + rep.clean_errors) << rep.summary();
  EXPECT_GT(rep.fault_fires, 0u) << rep.summary();
}

TEST_P(CampaignTest, NodeDeath) {
  DqOptions opts;
  opts.fault_spec = campaign_spec("node");
  opts.fault_seed = GetParam() ^ 0xabc;
  DqReport rep = run_seed(GetParam(), opts);
  for (const std::string& f : rep.failures) ADD_FAILURE() << f;
  EXPECT_EQ(rep.cases, rep.passed + rep.clean_errors) << rep.summary();
}

TEST_P(CampaignTest, NetworkFaults) {
  DqOptions opts;
  opts.with_server = true;
  opts.queries_per_seed = 3;
  opts.fault_spec = campaign_spec("net");
  opts.fault_seed = GetParam() ^ 0xde7;
  DqReport rep = run_seed(GetParam(), opts);
  for (const std::string& f : rep.failures) ADD_FAILURE() << f;
  EXPECT_EQ(rep.cases, rep.passed + rep.clean_errors) << rep.summary();
}

// Partial-aggregate merges fail with probability 0.2 at the agg.merge
// site — in the in-process cluster's per-node merge and in the dist
// daemons' checkpoint path, where the coordinator's failover must re-issue
// the shard and still produce exactly the right aggregates (a retry that
// double-counted committed partial state would fail the differential).
TEST_P(CampaignTest, AggregateMergeFaults) {
  DqOptions opts;
  opts.with_dist = true;
  opts.queries_per_seed = 3;
  opts.fault_spec = campaign_spec("agg");
  opts.fault_seed = GetParam() ^ 0xa66;
  DqReport rep = run_seed(GetParam(), opts);
  for (const std::string& f : rep.failures) ADD_FAILURE() << f;
  EXPECT_EQ(rep.cases, rep.passed + rep.clean_errors) << rep.summary();
}

TEST_P(CampaignTest, SchedulerWorkerFaults) {
  DqOptions opts;
  opts.with_server = true;
  opts.queries_per_seed = 3;
  opts.fault_spec = campaign_spec("sched");
  opts.fault_seed = GetParam() ^ 0x5c4ed;
  DqReport rep = run_seed(GetParam(), opts);
  for (const std::string& f : rep.failures) ADD_FAILURE() << f;
  EXPECT_EQ(rep.cases, rep.passed + rep.clean_errors) << rep.summary();
}

// The "serve" campaign poisons the server's result cache (lookup hits
// evicted, inserts dropped).  The dq harness runs every served query twice,
// so round two would normally replay from the cache; under poisoning it
// must fall through to a fresh execution and still match the engine
// bit-for-bit — a stale or corrupt cached frame would fail the differential.
TEST_P(CampaignTest, ResultCacheFaults) {
  DqOptions opts;
  opts.with_server = true;
  opts.queries_per_seed = 3;
  opts.fault_spec = campaign_spec("serve");
  opts.fault_seed = GetParam() ^ 0x5e47e;
  DqReport rep = run_seed(GetParam(), opts);
  for (const std::string& f : rep.failures) ADD_FAILURE() << f;
  EXPECT_EQ(rep.cases, rep.passed + rep.clean_errors) << rep.summary();
}

INSTANTIATE_TEST_SUITE_P(Seeds, CampaignTest,
                         ::testing::Range<uint64_t>(1, 5));

// The "jit" campaign fails every jit compilation at the faultz site (the
// check runs before the disk-cache lookup, so a warm cache cannot mask
// it).  The extractor must degrade to the vector tier invisibly: every
// case still byte-identical, zero clean errors — a missing or broken
// compiler can never change answers or availability.
TEST(DqFaultTest, JitCompileFaultFallsBackToVector) {
  DqOptions opts;
  opts.kernel_mode = KernelMode::kJit;
  opts.fault_spec = campaign_spec("jit");
  opts.fault_seed = 3;
  DqReport rep = run_seed(3, opts);
  for (const std::string& f : rep.failures) ADD_FAILURE() << f;
  EXPECT_EQ(rep.passed, rep.cases) << rep.summary();
  EXPECT_EQ(rep.clean_errors, 0) << rep.summary();
  EXPECT_GT(rep.fault_fires, 0u) << rep.summary();
}

// ---------------------------------------------------------------------------
// FaultPlan semantics.

TEST(FaultPlanTest, DeterministicPerSeedSiteAndHit) {
  auto& plan = faultz::FaultPlan::instance();
  auto pattern = [&](uint64_t seed) {
    faultz::ScopedFaultPlan scope(seed, "pread.eio=0.3");
    std::vector<bool> fires;
    for (int i = 0; i < 300; ++i)
      fires.push_back(plan.should_fire(faultz::Site::kPreadEio));
    return fires;
  };
  std::vector<bool> a = pattern(99), b = pattern(99), c = pattern(100);
  EXPECT_EQ(a, b);  // same {seed, site, hit index} -> same decisions
  EXPECT_NE(a, c);  // a different seed reshuffles them
  // ~30% of 300 decisions fire; both extremes would mean the hash is broken.
  std::size_t fires = static_cast<std::size_t>(
      std::count(a.begin(), a.end(), true));
  EXPECT_GT(fires, 40u);
  EXPECT_LT(fires, 160u);
}

TEST(FaultPlanTest, MaxFiresCapsInjection) {
  auto& plan = faultz::FaultPlan::instance();
  faultz::ScopedFaultPlan scope(7, "node.run=1:2");
  int fired = 0;
  for (int i = 0; i < 50; ++i)
    if (plan.should_fire(faultz::Site::kNodeRun)) ++fired;
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(plan.stats(faultz::Site::kNodeRun).hits, 50u);
  EXPECT_EQ(plan.stats(faultz::Site::kNodeRun).fires, 2u);
}

TEST(FaultPlanTest, MalformedSpecsThrow) {
  auto& plan = faultz::FaultPlan::instance();
  EXPECT_THROW(plan.arm(1, "pread.eio"), ValidationError);
  EXPECT_THROW(plan.arm(1, "no.such.site=0.5"), ValidationError);
  EXPECT_THROW(plan.arm(1, "pread.eio=2.0"), ValidationError);
  EXPECT_THROW(plan.arm(1, "pread.eio=x"), ValidationError);
  plan.disarm();
  EXPECT_FALSE(plan.armed());
}

TEST(FaultPlanTest, DisarmedHooksPassThrough) {
  faultz::FaultPlan::instance().disarm();
  EXPECT_FALSE(faultz::enabled());
  EXPECT_TRUE(faultz::inj_mmap_allowed());
  // maybe_throw_io must be a no-op when disarmed.
  faultz::maybe_throw_io(faultz::Site::kNodeRun, "should not throw");
}

// ---------------------------------------------------------------------------
// Targeted degradation mechanics.

// A dataset with >1 node whose selective payload query actually prunes
// chunks via the zone map, found deterministically by scanning seeds.
struct PrunableSetup {
  uint64_t seed = 0;
  DqDataset d;
  std::string sql;
};

PrunableSetup find_prunable(bool need_multinode) {
  for (uint64_t seed = 1; seed < 64; ++seed) {
    DqDataset d = make_dataset(seed);
    if (need_multinode && d.nodes < 2) continue;
    return {seed, d, "SELECT * FROM DqData WHERE P1 < 0.02"};
  }
  ADD_FAILURE() << "no suitable generated dataset in seeds 1..63";
  return {};
}

TEST(FaultRecoveryTest, RetryHealsTransientReadFaults) {
  PrunableSetup s = find_prunable(false);
  TempDir tmp("dqretry");
  std::string text = s.d.descriptor();
  meta::Descriptor desc = meta::parse_descriptor(text);
  codegen::DataServicePlan refplan(desc, "DqData", tmp.str());
  write_files(s.d, refplan.model());
  expr::Table want = refplan.execute(refplan.bind(s.sql));

  VirtualTable::Options vopts;
  vopts.plan_cache_capacity = 0;
  vopts.cluster.io_mode = IoMode::kPread;  // every read hits the pread hooks
  VirtualTable vt = VirtualTable::open(text, "DqData", tmp.str(), vopts);

  // The first two preads of the query fail with EIO; the per-AFC retry
  // must absorb both and still return exactly the right rows.
  faultz::ScopedFaultPlan scope(11, "pread.eio=1:2");
  FileCache::instance().clear();  // reads must traverse the hooked path
  storm::QueryResult r = vt.query_detailed(s.sql);
  EXPECT_TRUE(rows_equal_exact(r.merged(), want));
  EXPECT_GE(r.total_io_retries(), 1u);
  EXPECT_TRUE(r.first_error().empty());
}

TEST(FaultRecoveryTest, ExhaustedRetryBudgetFailsTyped) {
  PrunableSetup s = find_prunable(false);
  TempDir tmp("dqexhaust");
  std::string text = s.d.descriptor();
  VirtualTable::Options vopts;
  vopts.plan_cache_capacity = 0;
  vopts.cluster.io_mode = IoMode::kPread;
  vopts.cluster.io_retry_limit = 1;
  VirtualTable vt = VirtualTable::open(text, "DqData", tmp.str(), vopts);
  {
    meta::Descriptor desc = meta::parse_descriptor(text);
    codegen::DataServicePlan refplan(desc, "DqData", tmp.str());
    write_files(s.d, refplan.model());
  }
  // Every pread fails: the budget runs out and the query must surface a
  // typed IoError (the injected EIO arrives via errno, so the message is
  // the production pread failure), not hang or return rows.
  faultz::ScopedFaultPlan scope(12, "pread.eio=1");
  FileCache::instance().clear();
  try {
    vt.query(s.sql);
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    EXPECT_NE(std::string(e.what()).find("pread"), std::string::npos)
        << e.what();
  }
}

TEST(FaultRecoveryTest, PartialResultsSurviveNodeDeath) {
  PrunableSetup s = find_prunable(true);
  TempDir tmp("dqpartial");
  std::string text = s.d.descriptor();
  meta::Descriptor desc = meta::parse_descriptor(text);
  codegen::DataServicePlan refplan(desc, "DqData", tmp.str());
  write_files(s.d, refplan.model());
  const std::string sql = "SELECT * FROM DqData";
  expr::Table want = refplan.execute(refplan.bind(sql));

  VirtualTable::Options vopts;
  vopts.partial_results = true;
  VirtualTable vt = VirtualTable::open(text, "DqData", tmp.str(), vopts);

  // Exactly one node dies (probability 1, capped at one fire).
  faultz::ScopedFaultPlan scope(13, "node.run=1:1");
  storm::QueryResult r = vt.query_detailed(sql);
  ASSERT_EQ(r.failed_nodes().size(), 1u);
  EXPECT_EQ(r.first_error_kind(), ErrorKind::kIo);
  expr::Table got = r.merged();
  // Survivors answer: a strict, correct subset of the full result.
  EXPECT_TRUE(rows_subset(got, want));
  EXPECT_LT(got.num_rows(), want.num_rows());
  EXPECT_GT(got.num_rows(), 0u);
}

TEST(FaultRecoveryTest, WithoutPartialResultsNodeDeathThrowsTyped) {
  PrunableSetup s = find_prunable(true);
  TempDir tmp("dqnopartial");
  std::string text = s.d.descriptor();
  {
    meta::Descriptor desc = meta::parse_descriptor(text);
    codegen::DataServicePlan refplan(desc, "DqData", tmp.str());
    write_files(s.d, refplan.model());
  }
  VirtualTable vt = VirtualTable::open(text, "DqData", tmp.str(), {});
  faultz::ScopedFaultPlan scope(14, "node.run=1:1");
  EXPECT_THROW(vt.query("SELECT * FROM DqData"), IoError);
}

// ---------------------------------------------------------------------------
// Zone-map sidecar corruption: must fall back to a full scan with zero
// pruning and identical rows — never wrong answers from corrupt bounds.

class ZonemapCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    s_ = find_prunable(false);
    text_ = s_.d.descriptor();
    meta::Descriptor desc = meta::parse_descriptor(text_);
    codegen::DataServicePlan refplan(desc, "DqData", tmp_.str());
    write_files(s_.d, refplan.model());
    want_ = refplan.execute(refplan.bind(s_.sql));
    zm_dir_ = tmp_.str() + "/zm";

    // Healthy baseline: sidecars exist and the query prunes.
    VirtualTable::Options vopts;
    vopts.build_zonemap = true;
    vopts.zonemap_dir = zm_dir_;
    VirtualTable vt = VirtualTable::open(text_, "DqData", tmp_.str(), vopts);
    ASSERT_TRUE(vt.has_zonemap());
    storm::QueryResult r = vt.query_detailed(s_.sql);
    baseline_pruned_ = r.total_afcs_pruned();
    ASSERT_GT(baseline_pruned_, 0u) << "baseline query must prune chunks";
    ASSERT_TRUE(rows_equal_exact(r.merged(), want_));
  }

  // Reopens against the (possibly corrupted) sidecars and asserts the
  // conservative contract: no zone map, zero pruning, identical rows.
  void expect_full_scan_fallback() {
    VirtualTable::Options vopts;
    vopts.zonemap_dir = zm_dir_;  // load only, never rebuild
    VirtualTable vt = VirtualTable::open(text_, "DqData", tmp_.str(), vopts);
    EXPECT_FALSE(vt.has_zonemap());
    storm::QueryResult r = vt.query_detailed(s_.sql);
    EXPECT_EQ(r.total_afcs_pruned(), 0u);
    EXPECT_EQ(r.total_rows_pruned(), 0u);
    EXPECT_TRUE(rows_equal_exact(r.merged(), want_));
  }

  void truncate_file(const std::string& path) {
    uint64_t n = file_size(path);
    std::filesystem::resize_file(path, n / 2);
  }

  void flip_byte(const std::string& path, uint64_t at_fraction_num,
                 uint64_t at_fraction_den) {
    uint64_t n = file_size(path);
    ASSERT_GT(n, 0u);
    uint64_t pos = n * at_fraction_num / at_fraction_den;
    if (pos >= n) pos = n - 1;
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(static_cast<std::streamoff>(pos));
    char c = 0;
    f.get(c);
    f.seekp(static_cast<std::streamoff>(pos));
    f.put(static_cast<char>(c ^ 0x40));
  }

  PrunableSetup s_;
  std::string text_;
  TempDir tmp_{"dqzm"};
  std::string zm_dir_;
  expr::Table want_;
  uint64_t baseline_pruned_ = 0;
};

TEST_F(ZonemapCorruptionTest, TruncatedHeapFallsBack) {
  auto sp = zonemap::ZoneMap::sidecar_paths(zm_dir_, "DqData");
  truncate_file(sp.heap);
  expect_full_scan_fallback();
}

TEST_F(ZonemapCorruptionTest, BitFlippedHeapFallsBack) {
  auto sp = zonemap::ZoneMap::sidecar_paths(zm_dir_, "DqData");
  // Flip a byte in the middle of the page data: without checksums this
  // would silently change a min/max bound, not fail a parse.
  flip_byte(sp.heap, 1, 2);
  expect_full_scan_fallback();
}

TEST_F(ZonemapCorruptionTest, BitFlippedBtreeFallsBack) {
  auto sp = zonemap::ZoneMap::sidecar_paths(zm_dir_, "DqData");
  flip_byte(sp.btree, 2, 3);
  expect_full_scan_fallback();
}

TEST_F(ZonemapCorruptionTest, TruncatedManifestFallsBack) {
  auto sp = zonemap::ZoneMap::sidecar_paths(zm_dir_, "DqData");
  truncate_file(sp.manifest);
  expect_full_scan_fallback();
}

TEST_F(ZonemapCorruptionTest, InjectedLoadFaultFallsBack) {
  faultz::ScopedFaultPlan scope(15, "zonemap.load=1");
  expect_full_scan_fallback();
}

// ---------------------------------------------------------------------------
// Scheduler-side worker death over the wire: clean kError, slot released,
// next query unaffected.

TEST(SchedFaultTest, ServeWorkerDeathFailsCleanlyAndRecovers) {
  PrunableSetup s = find_prunable(false);
  TempDir tmp("dqsched");
  std::string text = s.d.descriptor();
  meta::Descriptor desc = meta::parse_descriptor(text);
  auto plan =
      std::make_shared<codegen::DataServicePlan>(desc, "DqData", tmp.str());
  write_files(s.d, plan->model());
  expr::Table want = plan->execute(plan->bind(s.sql));

  storm::QueryServer server(plan);
  storm::QueryClient client("127.0.0.1", server.port());

  faultz::ScopedFaultPlan scope(16, "serve.query=1:1");
  try {
    client.execute(s.sql);
    FAIL() << "expected the injected worker death to surface";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("injected"), std::string::npos)
        << e.what();
  }
  EXPECT_EQ(server.scheduler_metrics().failed, 1u);
  EXPECT_EQ(server.scheduler_metrics().running, 0u);  // slot released

  // The injection budget is spent; the very next query must succeed.
  storm::RemoteResult rr = client.execute(s.sql);
  EXPECT_TRUE(rows_equal_exact(rr.merged(), want));
  EXPECT_EQ(server.scheduler_metrics().completed, 1u);
}

}  // namespace
}  // namespace adv::dq
