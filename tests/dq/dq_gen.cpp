#include "dq/dq_gen.h"

#include <filesystem>
#include <sstream>
#include <vector>

#include "common/string_util.h"
#include "dataset/layout_writer.h"

namespace adv::dq {

DqDataset make_dataset(uint64_t seed) {
  SplitMix64 rng(mix64(seed ^ 0xd1f2fa57ULL));
  DqDataset d;
  d.seed = seed;
  d.nodes = 1 + static_cast<int>(rng.next_below(3));
  d.rels = 1 + static_cast<int>(rng.next_below(3));
  d.timesteps = 2 + static_cast<int>(rng.next_below(10));
  d.grid_per_node = 4 + static_cast<int>(rng.next_below(13));
  d.payloads = 1 + static_cast<int>(rng.next_below(5));
  d.rel_in_filename = rng.next_below(2) == 0;
  d.time_in_filename = !d.rel_in_filename && rng.next_below(4) == 0;
  d.time_outer = rng.next_below(2) == 0;
  // TIME cannot be both the record loop and a file-name binding (the
  // descriptor validator rejects the contradiction).
  d.transposed = !d.time_in_filename && rng.next_below(5) == 0;
  d.arrays = rng.next_below(2) == 0;
  d.store_dims = !d.transposed && rng.next_below(3) == 0;
  d.headers = rng.next_below(3) == 0;
  d.num_leaves =
      1 + static_cast<int>(rng.next_below(static_cast<uint64_t>(d.payloads)));
  return d;
}

double DqDataset::value(const std::string& attr, int rel, int time,
                        int gid) const {
  if (attr == "REL") return rel;
  if (attr == "TIME") return time;
  uint64_t h = mix64(seed ^ 0xdadafeedULL);
  h = hash_combine(h, std::hash<std::string>{}(attr));
  h = hash_combine(h, static_cast<uint64_t>(rel));
  h = hash_combine(h, static_cast<uint64_t>(time));
  h = hash_combine(h, static_cast<uint64_t>(gid));
  // Payloads are stored as float32; derive the value from a 24-bit mantissa
  // so the double the oracle computes round-trips the file exactly.
  uint32_t m = static_cast<uint32_t>(h >> 40);
  return static_cast<double>(static_cast<float>(m) * (1.0f / 16777216.0f));
}

std::string DqDataset::descriptor() const {
  std::ostringstream os;
  os << "[DQT]\nREL = short int\nTIME = int\n";
  for (int p = 1; p <= payloads; ++p) os << "P" << p << " = float\n";
  os << "\n[DqData]\nDatasetDescription = DQT\n";
  for (int n = 0; n < nodes; ++n)
    os << "DIR[" << n << "] = node" << n << "/dq\n";
  os << "\nDATASET \"DqData\" {\n  DATATYPE { DQT }\n"
     << "  DATAINDEX { REL TIME }\n";

  // Vertical partition: contiguous round-robin of payloads over leaves.
  std::vector<std::vector<std::string>> leaf_attrs(
      static_cast<std::size_t>(num_leaves));
  for (int p = 0; p < payloads; ++p)
    leaf_attrs[static_cast<std::size_t>(p * num_leaves / payloads)].push_back(
        "P" + std::to_string(p + 1));

  const std::string grid_range =
      format("($DIRID*%d+1):(($DIRID+1)*%d):1", grid_per_node, grid_per_node);
  const std::string time_range = format("1:%d:1", timesteps);
  const std::string rel_range = format("0:%d:1", rels - 1);

  for (std::size_t l = 0; l < leaf_attrs.size(); ++l) {
    if (leaf_attrs[l].empty()) continue;
    std::vector<std::string> fields = leaf_attrs[l];
    if (store_dims) {
      fields.insert(fields.begin(), "TIME");
      fields.insert(fields.begin(), "REL");
    }
    os << "  DATASET \"leaf" << l << "\" {\n";
    if (headers) os << "    DATATYPE { DQT HDR = long MARK = int }\n";
    os << "    DATASPACE {\n";
    if (headers) os << "      HDR\n";

    // Structure loops for dimensions not bound in the file name, then the
    // record loop.
    std::vector<std::pair<std::string, std::string>> outer;
    if (!rel_in_filename && !time_in_filename) {
      if (time_outer) {
        outer.push_back({"TIME", time_range});
        outer.push_back({"REL", rel_range});
      } else {
        outer.push_back({"REL", rel_range});
        outer.push_back({"TIME", time_range});
      }
    } else if (rel_in_filename) {
      outer.push_back({"TIME", time_range});
    } else {
      outer.push_back({"REL", rel_range});
    }

    std::string record_ident = "GRID";
    std::string record_range = grid_range;
    if (transposed) {
      record_ident = "TIME";
      record_range = time_range;
      for (auto& [ident, range] : outer)
        if (ident == "TIME") {
          ident = "GRID";
          range = grid_range;
        }
    }

    std::string pad = "      ";
    for (const auto& [ident, range] : outer) {
      os << pad << "LOOP " << ident << " " << range << " {\n";
      pad += "  ";
      if (headers) os << pad << "MARK\n";
    }
    if (arrays) {
      for (const auto& f : fields)
        os << pad << "LOOP " << record_ident << " " << record_range << " { "
           << f << " }\n";
    } else {
      os << pad << "LOOP " << record_ident << " " << record_range << " { "
         << join(fields, " ") << " }\n";
    }
    for (std::size_t k = 0; k < outer.size(); ++k) {
      pad.resize(pad.size() - 2);
      os << pad << "}\n";
    }
    os << "    }\n    DATA { \"DIR[$DIRID]/L" << l;
    if (rel_in_filename) os << "R$REL";
    if (time_in_filename) os << "T$TIME";
    os << "\"";
    if (rel_in_filename) os << " REL = " << rel_range;
    if (time_in_filename) os << " TIME = " << time_range;
    os << format(" DIRID = 0:%d:1", nodes - 1) << " }\n  }\n";
  }
  os << "}\n";
  return os.str();
}

void write_files(const DqDataset& d, const afc::DatasetModel& model) {
  dataset::ValueFn fn = [&d](const std::string& attr,
                             const meta::VarEnv& vars) {
    int rel = vars.has("REL") ? static_cast<int>(vars.get("REL")) : 0;
    int time = vars.has("TIME") ? static_cast<int>(vars.get("TIME")) : 0;
    int gid = vars.has("GRID") ? static_cast<int>(vars.get("GRID")) : 0;
    return d.value(attr, rel, time, gid);
  };
  for (const auto& cf : model.files()) {
    std::filesystem::create_directories(
        std::filesystem::path(cf.full_path).parent_path());
    const auto& leaf = model.leaves()[static_cast<std::size_t>(cf.leaf)];
    dataset::write_file_from_layout(*leaf.decl, model.schema(), cf.env,
                                    cf.full_path, fn);
  }
}

expr::Table oracle_rows(const DqDataset& d, const expr::BoundQuery& q) {
  expr::Table out(q.result_columns());
  const meta::Schema& s = q.schema();
  const auto& needed = q.needed_attrs();
  std::vector<double> buf(needed.size());
  std::vector<double> sel(q.select_slots().size());
  for (int rel = 0; rel < d.rels; ++rel)
    for (int time = 1; time <= d.timesteps; ++time)
      for (int gid = 1; gid <= d.nodes * d.grid_per_node; ++gid) {
        for (std::size_t i = 0; i < needed.size(); ++i)
          buf[i] = d.value(s.at(static_cast<std::size_t>(needed[i])).name,
                           rel, time, gid);
        if (!q.matches(buf.data())) continue;
        for (std::size_t i = 0; i < sel.size(); ++i)
          sel[i] = buf[static_cast<std::size_t>(q.select_slots()[i])];
        out.append_row(sel.data());
      }
  return out;
}

namespace {

// One atomic condition over the dimensions or payloads.
std::string random_cond(const DqDataset& d, SplitMix64& rng) {
  switch (rng.next_below(6)) {
    case 0: {  // TIME range
      int lo = 1 + static_cast<int>(
                       rng.next_below(static_cast<uint64_t>(d.timesteps)));
      int hi = lo + static_cast<int>(rng.next_below(
                        static_cast<uint64_t>(d.timesteps - lo + 1)));
      return rng.next_below(2) == 0
                 ? format("TIME >= %d AND TIME <= %d", lo, hi)
                 : format("TIME BETWEEN %d AND %d", lo, hi);
    }
    case 1: {  // TIME IN list
      int k = 1 + static_cast<int>(rng.next_below(4));
      std::vector<std::string> vals;
      for (int i = 0; i < k; ++i)
        vals.push_back(std::to_string(
            1 + static_cast<int>(
                    rng.next_below(static_cast<uint64_t>(d.timesteps)))));
      return "TIME IN (" + join(vals, ", ") + ")";
    }
    case 2: {  // REL equality or IN
      int r = static_cast<int>(rng.next_below(static_cast<uint64_t>(d.rels)));
      if (d.rels > 1 && rng.next_below(2) == 0) {
        int r2 =
            static_cast<int>(rng.next_below(static_cast<uint64_t>(d.rels)));
        return format("REL IN (%d, %d)", r, r2);
      }
      return format("REL = %d", r);
    }
    case 3: {  // payload comparison
      int p = 1 + static_cast<int>(
                      rng.next_below(static_cast<uint64_t>(d.payloads)));
      return format("P%d %s 0.%d", p, rng.next_below(2) == 0 ? "<" : ">=",
                    1 + static_cast<int>(rng.next_below(8)));
    }
    case 4: {  // filter function over payloads
      int p = 1 + static_cast<int>(
                      rng.next_below(static_cast<uint64_t>(d.payloads)));
      int q = 1 + static_cast<int>(
                      rng.next_below(static_cast<uint64_t>(d.payloads)));
      switch (rng.next_below(3)) {
        case 0:
          return format("ABSV(P%d - 0.5) < 0.%d", p,
                        1 + static_cast<int>(rng.next_below(5)));
        case 1:
          return format("MAG2(P%d, P%d) %s 0.%d", p, q,
                        rng.next_below(2) == 0 ? "<" : ">=",
                        2 + static_cast<int>(rng.next_below(7)));
        default:
          return format("SPEED(P%d, P%d, P%d) < 1.%d", p, q,
                        1 + static_cast<int>(rng.next_below(
                                static_cast<uint64_t>(d.payloads))),
                        static_cast<int>(rng.next_below(10)));
      }
    }
    default: {  // negated payload comparison
      int p = 1 + static_cast<int>(
                      rng.next_below(static_cast<uint64_t>(d.payloads)));
      return format("NOT P%d < 0.%d", p,
                    1 + static_cast<int>(rng.next_below(8)));
    }
  }
}

}  // namespace

std::string random_query(const DqDataset& d, SplitMix64& rng) {
  std::string sql = "SELECT * FROM DqData";
  std::size_t nconds = rng.next_below(3);  // 0..2 top-level conjuncts
  std::vector<std::string> conds;
  for (std::size_t i = 0; i < nconds; ++i) {
    std::string c = random_cond(d, rng);
    // Sometimes widen a conjunct into a parenthesized disjunction.
    if (rng.next_below(4) == 0)
      c = "(" + c + " OR " + random_cond(d, rng) + ")";
    conds.push_back(c);
  }
  if (!conds.empty()) sql += " WHERE " + join(conds, " AND ");
  return sql;
}

}  // namespace adv::dq
