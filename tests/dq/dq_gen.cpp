#include "dq/dq_gen.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <limits>
#include <numeric>
#include <sstream>
#include <vector>

#include "common/error.h"
#include "common/string_util.h"
#include "dataset/layout_writer.h"

namespace adv::dq {

DqDataset make_dataset(uint64_t seed) {
  SplitMix64 rng(mix64(seed ^ 0xd1f2fa57ULL));
  DqDataset d;
  d.seed = seed;
  d.nodes = 1 + static_cast<int>(rng.next_below(3));
  d.rels = 1 + static_cast<int>(rng.next_below(3));
  d.timesteps = 2 + static_cast<int>(rng.next_below(10));
  d.grid_per_node = 4 + static_cast<int>(rng.next_below(13));
  d.payloads = 1 + static_cast<int>(rng.next_below(5));
  d.rel_in_filename = rng.next_below(2) == 0;
  d.time_in_filename = !d.rel_in_filename && rng.next_below(4) == 0;
  d.time_outer = rng.next_below(2) == 0;
  // TIME cannot be both the record loop and a file-name binding (the
  // descriptor validator rejects the contradiction).
  d.transposed = !d.time_in_filename && rng.next_below(5) == 0;
  d.arrays = rng.next_below(2) == 0;
  d.store_dims = !d.transposed && rng.next_below(3) == 0;
  d.headers = rng.next_below(3) == 0;
  d.num_leaves =
      1 + static_cast<int>(rng.next_below(static_cast<uint64_t>(d.payloads)));
  // Titan-style spatio-temporal chunking: the record loop is always CELL
  // inside a LAT x LON chunk grid, so transposed does not apply.
  d.st_grid = rng.next_below(4) == 0;
  if (d.st_grid) {
    d.transposed = false;
    d.lat_chunks = 1 + static_cast<int>(rng.next_below(3));
    d.lon_chunks = 1 + static_cast<int>(rng.next_below(3));
    d.cells_per_chunk = 2 + static_cast<int>(rng.next_below(5));
    d.grid_per_node = d.lat_chunks * d.lon_chunks * d.cells_per_chunk;
  }
  // Column-major record loops subsume per-variable arrays (one contiguous
  // array per attribute either way); generate them as distinct shapes.
  d.colmajor = rng.next_below(4) == 0;
  if (d.colmajor) d.arrays = false;
  return d;
}

double DqDataset::value(const std::string& attr, int rel, int time,
                        int gid) const {
  if (attr == "REL") return rel;
  if (attr == "TIME") return time;
  if (st_grid && attr == "LAT")
    return (gid - 1) / (lon_chunks * cells_per_chunk) + 1;
  if (st_grid && attr == "LON")
    return (gid - 1) / cells_per_chunk % lon_chunks + 1;
  uint64_t h = mix64(seed ^ 0xdadafeedULL);
  h = hash_combine(h, std::hash<std::string>{}(attr));
  h = hash_combine(h, static_cast<uint64_t>(rel));
  h = hash_combine(h, static_cast<uint64_t>(time));
  h = hash_combine(h, static_cast<uint64_t>(gid));
  // Payloads are stored as float32; derive the value from a 24-bit mantissa
  // so the double the oracle computes round-trips the file exactly.
  uint32_t m = static_cast<uint32_t>(h >> 40);
  return static_cast<double>(static_cast<float>(m) * (1.0f / 16777216.0f));
}

std::string DqDataset::descriptor() const {
  std::ostringstream os;
  const std::string ty = name + "T";
  os << "[" << ty << "]\nREL = short int\nTIME = int\n";
  if (st_grid) os << "LAT = int\nLON = int\n";
  for (int p = 1; p <= payloads; ++p) os << "P" << p << " = float\n";
  os << "\n[" << name << "]\nDatasetDescription = " << ty << "\n";
  for (int n = 0; n < nodes; ++n)
    os << "DIR[" << n << "] = node" << n << "/dq\n";
  os << "\nDATASET \"" << name << "\" {\n  DATATYPE { " << ty << " }\n"
     << "  DATAINDEX { REL TIME" << (st_grid ? " LAT LON" : "") << " }\n";

  // Vertical partition: contiguous round-robin of payloads over leaves.
  std::vector<std::vector<std::string>> leaf_attrs(
      static_cast<std::size_t>(num_leaves));
  for (int p = 0; p < payloads; ++p)
    leaf_attrs[static_cast<std::size_t>(p * num_leaves / payloads)].push_back(
        "P" + std::to_string(p + 1));

  const std::string grid_range =
      format("($DIRID*%d+1):(($DIRID+1)*%d):1", grid_per_node, grid_per_node);
  const std::string time_range = format("1:%d:1", timesteps);
  const std::string rel_range = format("0:%d:1", rels - 1);

  for (std::size_t l = 0; l < leaf_attrs.size(); ++l) {
    if (leaf_attrs[l].empty()) continue;
    std::vector<std::string> fields = leaf_attrs[l];
    if (store_dims) {
      fields.insert(fields.begin(), "TIME");
      fields.insert(fields.begin(), "REL");
    }
    os << "  DATASET \"leaf" << l << "\" {\n";
    if (headers)
      os << "    DATATYPE { " << ty << " HDR = long MARK = int }\n";
    os << "    DATASPACE {\n";
    if (headers) os << "      HDR\n";

    // Structure loops for dimensions not bound in the file name, then the
    // record loop.
    std::vector<std::pair<std::string, std::string>> outer;
    if (!rel_in_filename && !time_in_filename) {
      if (time_outer) {
        outer.push_back({"TIME", time_range});
        outer.push_back({"REL", rel_range});
      } else {
        outer.push_back({"REL", rel_range});
        outer.push_back({"TIME", time_range});
      }
    } else if (rel_in_filename) {
      outer.push_back({"TIME", time_range});
    } else {
      outer.push_back({"REL", rel_range});
    }

    std::string record_ident = "GRID";
    std::string record_range = grid_range;
    if (st_grid) {
      // Spatio-temporal chunk grid: LAT spans the nodes (spatial
      // partitioning via $DIRID), LON and the CELL record loop are
      // per-chunk.
      outer.push_back({"LAT", format("($DIRID*%d+1):(($DIRID+1)*%d):1",
                                     lat_chunks, lat_chunks)});
      outer.push_back({"LON", format("1:%d:1", lon_chunks)});
      record_ident = "CELL";
      record_range = format("1:%d:1", cells_per_chunk);
    } else if (transposed) {
      record_ident = "TIME";
      record_range = time_range;
      for (auto& [ident, range] : outer)
        if (ident == "TIME") {
          ident = "GRID";
          range = grid_range;
        }
    }

    std::string pad = "      ";
    for (const auto& [ident, range] : outer) {
      os << pad << "LOOP " << ident << " " << range << " {\n";
      pad += "  ";
      if (headers) os << pad << "MARK\n";
    }
    if (arrays) {
      for (const auto& f : fields)
        os << pad << "LOOP " << record_ident << " " << record_range << " { "
           << f << " }\n";
    } else {
      os << pad << "LOOP " << record_ident << " " << record_range
         << (colmajor ? " COLMAJOR" : "") << " { " << join(fields, " ")
         << " }\n";
    }
    for (std::size_t k = 0; k < outer.size(); ++k) {
      pad.resize(pad.size() - 2);
      os << pad << "}\n";
    }
    os << "    }\n    DATA { \"DIR[$DIRID]/L" << l;
    if (rel_in_filename) os << "R$REL";
    if (time_in_filename) os << "T$TIME";
    os << "\"";
    if (rel_in_filename) os << " REL = " << rel_range;
    if (time_in_filename) os << " TIME = " << time_range;
    os << format(" DIRID = 0:%d:1", nodes - 1) << " }\n  }\n";
  }
  os << "}\n";
  return os.str();
}

void write_files(const DqDataset& d, const afc::DatasetModel& model) {
  dataset::ValueFn fn = [&d](const std::string& attr,
                             const meta::VarEnv& vars) {
    int rel = vars.has("REL") ? static_cast<int>(vars.get("REL")) : 0;
    int time = vars.has("TIME") ? static_cast<int>(vars.get("TIME")) : 0;
    int gid = vars.has("GRID") ? static_cast<int>(vars.get("GRID")) : 0;
    if (d.st_grid && vars.has("CELL")) {
      // Cell id from the (LAT, LON, CELL) chunk coordinates; LAT already
      // carries the node offset via $DIRID.
      int lat = static_cast<int>(vars.get("LAT"));
      int lon = static_cast<int>(vars.get("LON"));
      int cell = static_cast<int>(vars.get("CELL"));
      gid = ((lat - 1) * d.lon_chunks + (lon - 1)) * d.cells_per_chunk + cell;
    }
    return d.value(attr, rel, time, gid);
  };
  for (const auto& cf : model.files()) {
    std::filesystem::create_directories(
        std::filesystem::path(cf.full_path).parent_path());
    const auto& leaf = model.leaves()[static_cast<std::size_t>(cf.leaf)];
    dataset::write_file_from_layout(*leaf.decl, model.schema(), cf.env,
                                    cf.full_path, fn);
  }
}

namespace {

// IEEE total order as an unsigned compare — the documented contract for
// group-key identity and ORDER BY (docs/AGGREGATION.md).
uint64_t oracle_obits(double v) {
  uint64_t b;
  std::memcpy(&b, &v, sizeof b);
  return (b >> 63) ? ~b : b | (uint64_t{1} << 63);
}

// Third, independent aggregation / top-k implementation over the oracle's
// scan rows (the engine lives in src/agg, the naive reference in
// codegen/plan.cpp).  Structured differently from both on purpose:
// sort-based run grouping instead of a map or hash table, and long-double
// SUM/AVG accumulation — so its SUM/AVG values match the other two only
// within float tolerance, which is exactly what the harness's tolerant
// comparison demands of those columns.
expr::Table oracle_pushdown(const expr::BoundQuery& q,
                            const expr::Table& scan) {
  const std::vector<expr::Table::Column> out_schema = q.result_columns();
  const std::size_t width = out_schema.size();
  const double qnan = std::numeric_limits<double>::quiet_NaN();

  std::vector<double> rows;  // final rows, row-major `width` wide
  if (q.has_aggregates()) {
    const auto& key_cols = q.group_key_cols();
    const auto& items = q.agg_items();
    const std::size_t n = scan.num_rows();
    const std::size_t ncols = scan.columns().size();
    std::vector<double> cells(n * ncols);
    std::vector<std::vector<uint64_t>> kb(
        n, std::vector<uint64_t>(key_cols.size()));
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t c = 0; c < ncols; ++c)
        cells[r * ncols + c] = scan.at(r, c);
      for (std::size_t k = 0; k < key_cols.size(); ++k) {
        double v = cells[r * ncols + static_cast<std::size_t>(key_cols[k])];
        if (std::isnan(v)) v = qnan;
        if (v == 0) v = 0.0;
        kb[r][k] = oracle_obits(v);
      }
    }
    std::vector<std::size_t> ord(n);
    std::iota(ord.begin(), ord.end(), std::size_t{0});
    std::sort(ord.begin(), ord.end(),
              [&](std::size_t x, std::size_t y) { return kb[x] < kb[y]; });

    auto emit_group = [&](const std::vector<std::size_t>& members) {
      std::vector<double> keyvals(key_cols.size());
      for (std::size_t k = 0; k < key_cols.size(); ++k) {
        double v = members.empty()
                       ? qnan
                       : cells[members[0] * ncols +
                               static_cast<std::size_t>(key_cols[k])];
        if (std::isnan(v)) v = qnan;
        if (v == 0) v = 0.0;
        keyvals[k] = v;
      }
      for (const auto& o : q.output_cols()) {
        if (!o.is_agg) {
          rows.push_back(keyvals[static_cast<std::size_t>(o.index)]);
          continue;
        }
        const auto& item = items[static_cast<std::size_t>(o.index)];
        const uint64_t count = members.size();
        if (item.fn == sql::AggFn::kCount) {
          rows.push_back(static_cast<double>(count));
          continue;
        }
        long double sum = 0.0L;
        double mn = 0, mx = 0;
        bool seen = false;
        for (std::size_t m : members) {
          const double v = item.input.eval(cells.data() + m * ncols);
          sum += v;
          if (!std::isnan(v)) {
            if (!seen || v < mn) mn = v;
            if (!seen || v > mx) mx = v;
            seen = true;
          }
        }
        switch (item.fn) {
          case sql::AggFn::kSum:
            rows.push_back(count ? static_cast<double>(sum) : 0.0);
            break;
          case sql::AggFn::kAvg:
            rows.push_back(count ? static_cast<double>(
                                       sum / static_cast<long double>(count))
                                 : qnan);
            break;
          case sql::AggFn::kMin:
            rows.push_back(seen ? mn : qnan);
            break;
          default:
            rows.push_back(seen ? mx : qnan);
            break;
        }
      }
    };

    // Global aggregate over empty input still yields its one row.
    if (n == 0 && key_cols.empty()) emit_group({});
    std::vector<std::size_t> run;
    for (std::size_t i = 0; i < n; ++i) {
      if (!run.empty() && kb[ord[i]] != kb[run[0]]) {
        emit_group(run);
        run.clear();
      }
      run.push_back(ord[i]);
    }
    if (!run.empty()) emit_group(run);
  } else {
    // Plain top-k: scan rows already have the final schema.
    rows.reserve(scan.num_rows() * width);
    for (std::size_t r = 0; r < scan.num_rows(); ++r)
      for (std::size_t c = 0; c < width; ++c) rows.push_back(scan.at(r, c));
  }

  // ORDER BY keys, then whole-row lexicographic tie-break — the same total
  // order the engine and the naive reference use, so a LIMIT cuts all
  // three at the same rows (the generated grammar keeps ORDER BY and the
  // leading columns exact, see random_query).
  const std::size_t nrows = width ? rows.size() / width : 0;
  std::vector<std::size_t> perm(nrows);
  std::iota(perm.begin(), perm.end(), std::size_t{0});
  std::sort(perm.begin(), perm.end(), [&](std::size_t x, std::size_t y) {
    const double* a = rows.data() + x * width;
    const double* b = rows.data() + y * width;
    for (const auto& k : q.order_keys()) {
      const uint64_t u = oracle_obits(a[k.col]), v = oracle_obits(b[k.col]);
      if (u != v) return k.desc ? u > v : u < v;
    }
    for (std::size_t c = 0; c < width; ++c) {
      const uint64_t u = oracle_obits(a[c]), v = oracle_obits(b[c]);
      if (u != v) return u < v;
    }
    return false;
  });
  std::size_t keep = nrows;
  if (q.limit() >= 0)
    keep = std::min<std::size_t>(keep, static_cast<std::size_t>(q.limit()));
  expr::Table out(out_schema);
  for (std::size_t i = 0; i < keep; ++i)
    out.append_rows(rows.data() + perm[i] * width, 1);
  return out;
}

}  // namespace

expr::Table oracle_rows(const DqDataset& d, const expr::BoundQuery& q) {
  const meta::Schema& s = q.schema();
  // Pushdown queries aggregate scan rows (select-slot order); plain
  // queries emit them directly (same shape either way).
  std::vector<expr::Table::Column> scan_cols;
  for (int a : q.select_attrs()) {
    const auto& attr = s.at(static_cast<std::size_t>(a));
    scan_cols.push_back({attr.name, attr.type});
  }
  expr::Table out(scan_cols);
  const auto& needed = q.needed_attrs();
  std::vector<double> buf(needed.size());
  std::vector<double> sel(q.select_slots().size());
  for (int rel = 0; rel < d.rels; ++rel)
    for (int time = 1; time <= d.timesteps; ++time)
      for (int gid = 1; gid <= d.nodes * d.grid_per_node; ++gid) {
        for (std::size_t i = 0; i < needed.size(); ++i)
          buf[i] = d.value(s.at(static_cast<std::size_t>(needed[i])).name,
                           rel, time, gid);
        if (!q.matches(buf.data())) continue;
        for (std::size_t i = 0; i < sel.size(); ++i)
          sel[i] = buf[static_cast<std::size_t>(q.select_slots()[i])];
        out.append_row(sel.data());
      }
  if (q.is_pushdown()) return oracle_pushdown(q, out);
  return out;
}

namespace {

// One atomic condition over the dimensions or payloads.  `pfx` is prepended
// to every attribute reference ("" for single-table queries, "A." / "B."
// for the alias-qualified side conjuncts of a join) — same draws, same
// condition, different spelling.
std::string random_cond(const DqDataset& d, SplitMix64& rng,
                        const std::string& pfx = "") {
  const char* x = pfx.c_str();
  switch (rng.next_below(d.st_grid ? 8 : 6)) {
    case 6: {  // LAT range (prunes whole spatial chunk rows)
      int nlat = d.nodes * d.lat_chunks;
      int lo = 1 + static_cast<int>(rng.next_below(
                       static_cast<uint64_t>(nlat)));
      int hi = lo + static_cast<int>(
                        rng.next_below(static_cast<uint64_t>(nlat - lo + 1)));
      return format("%sLAT BETWEEN %d AND %d", x, lo, hi);
    }
    case 7: {  // LON equality or range
      int lon = 1 + static_cast<int>(rng.next_below(
                        static_cast<uint64_t>(d.lon_chunks)));
      if (rng.next_below(2) == 0) return format("%sLON = %d", x, lon);
      return format("%sLON >= %d", x, lon);
    }
    case 0: {  // TIME range
      int lo = 1 + static_cast<int>(
                       rng.next_below(static_cast<uint64_t>(d.timesteps)));
      int hi = lo + static_cast<int>(rng.next_below(
                        static_cast<uint64_t>(d.timesteps - lo + 1)));
      return rng.next_below(2) == 0
                 ? format("%sTIME >= %d AND %sTIME <= %d", x, lo, x, hi)
                 : format("%sTIME BETWEEN %d AND %d", x, lo, hi);
    }
    case 1: {  // TIME IN list
      int k = 1 + static_cast<int>(rng.next_below(4));
      std::vector<std::string> vals;
      for (int i = 0; i < k; ++i)
        vals.push_back(std::to_string(
            1 + static_cast<int>(
                    rng.next_below(static_cast<uint64_t>(d.timesteps)))));
      return pfx + "TIME IN (" + join(vals, ", ") + ")";
    }
    case 2: {  // REL equality or IN
      int r = static_cast<int>(rng.next_below(static_cast<uint64_t>(d.rels)));
      if (d.rels > 1 && rng.next_below(2) == 0) {
        int r2 =
            static_cast<int>(rng.next_below(static_cast<uint64_t>(d.rels)));
        return format("%sREL IN (%d, %d)", x, r, r2);
      }
      return format("%sREL = %d", x, r);
    }
    case 3: {  // payload comparison
      int p = 1 + static_cast<int>(
                      rng.next_below(static_cast<uint64_t>(d.payloads)));
      return format("%sP%d %s 0.%d", x, p, rng.next_below(2) == 0 ? "<" : ">=",
                    1 + static_cast<int>(rng.next_below(8)));
    }
    case 4: {  // filter function over payloads
      int p = 1 + static_cast<int>(
                      rng.next_below(static_cast<uint64_t>(d.payloads)));
      int q = 1 + static_cast<int>(
                      rng.next_below(static_cast<uint64_t>(d.payloads)));
      switch (rng.next_below(3)) {
        case 0:
          return format("ABSV(%sP%d - 0.5) < 0.%d", x, p,
                        1 + static_cast<int>(rng.next_below(5)));
        case 1:
          return format("MAG2(%sP%d, %sP%d) %s 0.%d", x, p, x, q,
                        rng.next_below(2) == 0 ? "<" : ">=",
                        2 + static_cast<int>(rng.next_below(7)));
        default:
          return format("SPEED(%sP%d, %sP%d, %sP%d) < 1.%d", x, p, x, q, x,
                        1 + static_cast<int>(rng.next_below(
                                static_cast<uint64_t>(d.payloads))),
                        static_cast<int>(rng.next_below(10)));
      }
    }
    default: {  // negated payload comparison
      int p = 1 + static_cast<int>(
                      rng.next_below(static_cast<uint64_t>(d.payloads)));
      return format("NOT %sP%d < 0.%d", x, p,
                    1 + static_cast<int>(rng.next_below(8)));
    }
  }
}

}  // namespace

std::string random_query(const DqDataset& d, SplitMix64& rng) {
  std::size_t nconds = rng.next_below(3);  // 0..2 top-level conjuncts
  std::vector<std::string> conds;
  for (std::size_t i = 0; i < nconds; ++i) {
    std::string c = random_cond(d, rng);
    // Sometimes widen a conjunct into a parenthesized disjunction.
    if (rng.next_below(4) == 0)
      c = "(" + c + " OR " + random_cond(d, rng) + ")";
    conds.push_back(c);
  }
  const std::string where =
      conds.empty() ? "" : " WHERE " + join(conds, " AND ");

  const uint64_t shape = rng.next_below(4);
  if (shape == 0) {
    // Aggregation pushdown: GROUP BY over the dimension attrs (or a global
    // aggregate) with COUNT/SUM/AVG/MIN/MAX over the payloads.  Group keys
    // lead the select list so the whole-row tie-break that every executor
    // shares resolves on exact columns, and ORDER BY sticks to the exact
    // outputs (keys, COUNT, MIN, MAX) — SUM/AVG compare only within float
    // tolerance, so ordering by them could cut a LIMIT at different rows.
    std::vector<std::string> keys;
    switch (rng.next_below(d.st_grid ? 5 : 4)) {
      case 0: break;  // global aggregate
      case 1: keys = {"REL"}; break;
      case 2: keys = {"TIME"}; break;
      case 4: keys = {"LAT", "LON"}; break;
      default: keys = {"REL", "TIME"}; break;
    }
    std::vector<std::string> items;
    std::vector<std::string> orderable = keys;
    const int nitems = 1 + static_cast<int>(rng.next_below(3));
    for (int i = 0; i < nitems; ++i) {
      const std::string p =
          format("P%d", 1 + static_cast<int>(rng.next_below(
                                static_cast<uint64_t>(d.payloads))));
      switch (rng.next_below(5)) {
        case 0:
          items.push_back("COUNT(*)");
          orderable.push_back(items.back());
          break;
        case 1:
          items.push_back("SUM(" + p + ")");
          break;
        case 2:
          items.push_back("AVG(" + p + ")");
          break;
        case 3:
          items.push_back("MIN(" + p + ")");
          orderable.push_back(items.back());
          break;
        default:
          items.push_back("MAX(" + p + ")");
          orderable.push_back(items.back());
          break;
      }
    }
    std::vector<std::string> select = keys;
    select.insert(select.end(), items.begin(), items.end());
    std::string sql = "SELECT " + join(select, ", ") + " FROM " + d.name + where;
    if (!keys.empty()) sql += " GROUP BY " + join(keys, ", ");
    if (!orderable.empty() && rng.next_below(2) == 0) {
      sql += " ORDER BY " +
             orderable[rng.next_below(orderable.size())] +
             (rng.next_below(2) == 0 ? " DESC" : "");
      if (rng.next_below(4) != 0)
        sql += format(" LIMIT %d", 1 + static_cast<int>(rng.next_below(8)));
    } else if (rng.next_below(4) == 0) {
      sql += format(" LIMIT %d", 1 + static_cast<int>(rng.next_below(8)));
    }
    return sql;
  }
  if (shape == 1) {
    // Plain top-k: full rows through the bounded per-worker heap.  Rows
    // are exact, and ties break on the shared whole-row total order, so
    // the LIMIT cut is byte-identical everywhere.
    std::string attr;
    switch (rng.next_below(3)) {
      case 0: attr = "REL"; break;
      case 1: attr = "TIME"; break;
      default:
        attr = format("P%d", 1 + static_cast<int>(rng.next_below(
                                     static_cast<uint64_t>(d.payloads))));
        break;
    }
    return "SELECT * FROM " + d.name + where + " ORDER BY " + attr +
           (rng.next_below(2) == 0 ? " DESC" : "") +
           format(" LIMIT %d", 1 + static_cast<int>(rng.next_below(12)));
  }
  return "SELECT * FROM " + d.name + where;
}

DqJoinCase random_join_query(const DqDataset& a, const DqDataset& b,
                             SplitMix64& rng) {
  DqJoinCase jc;
  // REL and TIME are implicit in every generated shape (file-name binding,
  // structure loop, or record loop), so any subset joins.
  switch (rng.next_below(3)) {
    case 0: jc.keys = {"TIME"}; break;
    case 1: jc.keys = {"REL"}; break;
    default: jc.keys = {"REL", "TIME"}; break;
  }
  std::vector<std::string> conj;
  for (const std::string& k : jc.keys)
    conj.push_back("A." + k + " = B." + k);
  std::vector<std::string> side_conds[2];
  for (int side = 0; side < 2; ++side) {
    const DqDataset& d = side == 0 ? a : b;
    const std::string pfx = side == 0 ? "A." : "B.";
    const std::size_t n = rng.next_below(3);  // 0..2 conjuncts per side
    for (std::size_t i = 0; i < n; ++i) {
      // Fork the stream so the qualified (join) and unqualified (side
      // query) spellings come from identical draws.
      SplitMix64 fork = rng;
      conj.push_back(random_cond(d, fork, pfx));
      side_conds[side].push_back(random_cond(d, rng));
    }
  }
  jc.sql = "SELECT * FROM " + a.name + " A, " + b.name + " B WHERE " +
           join(conj, " AND ");
  jc.left_sql = "SELECT * FROM " + a.name;
  if (!side_conds[0].empty())
    jc.left_sql += " WHERE " + join(side_conds[0], " AND ");
  jc.right_sql = "SELECT * FROM " + b.name;
  if (!side_conds[1].empty())
    jc.right_sql += " WHERE " + join(side_conds[1], " AND ");
  return jc;
}

expr::Table oracle_join(const expr::Table& left, const expr::Table& right,
                        const std::vector<std::string>& keys) {
  auto col_of = [](const expr::Table& t, const std::string& name) {
    for (std::size_t i = 0; i < t.columns().size(); ++i)
      if (t.columns()[i].name == name) return i;
    throw ValidationError("oracle_join: side table lacks key column " + name);
  };
  std::vector<std::size_t> lk, rk;
  for (const std::string& k : keys) {
    lk.push_back(col_of(left, k));
    rk.push_back(col_of(right, k));
  }
  std::vector<expr::Table::Column> cols = left.columns();
  cols.insert(cols.end(), right.columns().begin(), right.columns().end());
  expr::Table out(std::move(cols));
  std::vector<double> row(left.columns().size() + right.columns().size());
  for (std::size_t i = 0; i < left.num_rows(); ++i) {
    for (std::size_t j = 0; j < right.num_rows(); ++j) {
      bool match = true;
      // Keys are small exact integers in doubles; plain equality is exact.
      for (std::size_t k = 0; k < lk.size() && match; ++k)
        match = left.at(i, lk[k]) == right.at(j, rk[k]);
      if (!match) continue;
      std::size_t c = 0;
      for (std::size_t x = 0; x < left.columns().size(); ++x)
        row[c++] = left.at(i, x);
      for (std::size_t x = 0; x < right.columns().size(); ++x)
        row[c++] = right.at(j, x);
      out.append_row(row.data());
    }
  }
  return out;
}

}  // namespace adv::dq
