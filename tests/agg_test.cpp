// Aggregation pushdown tests: exact-sum properties, SQL surface, strategy
// selection, and the end-to-end determinism contract — GROUP BY /
// aggregate / top-k results must be byte-identical across thread counts,
// kernel tiers, and fault-healed runs, while shipping only aggregate state
// (docs/AGGREGATION.md).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <map>
#include <random>
#include <vector>

#include "agg/agg.h"
#include "agg/exact_sum.h"
#include "common/tempdir.h"
#include "dataset/ipars.h"
#include "faultz/faultz.h"
#include "sql/ast.h"
#include "storm/cluster.h"

namespace adv {
namespace {

// --- ExactSum --------------------------------------------------------------

double finalize_of(const std::vector<double>& vals) {
  agg::ExactSum s;
  for (double v : vals) s.add(v);
  return s.finalize();
}

TEST(ExactSumTest, SmallIntegersAreExact) {
  EXPECT_EQ(finalize_of({1, 2, 3, 4}), 10.0);
  EXPECT_EQ(finalize_of({}), 0.0);
  EXPECT_EQ(finalize_of({-5, 5}), 0.0);
}

TEST(ExactSumTest, CancellationPlainDoublesGetWrong) {
  // 2^53 + 1 rounds to 2^53 in double arithmetic; the superaccumulator
  // keeps the 1.
  const double big = std::ldexp(1.0, 53);
  EXPECT_EQ(finalize_of({big, 1.0, -big}), 1.0);
  EXPECT_EQ(finalize_of({1e308, 1e308, -1e308, -1e308}), 0.0);
}

TEST(ExactSumTest, SubnormalsAndRounding) {
  const double tiny = std::ldexp(1.0, -1074);  // smallest subnormal
  EXPECT_EQ(finalize_of({tiny, tiny}), std::ldexp(1.0, -1073));
  EXPECT_EQ(finalize_of({tiny, -tiny}), 0.0);
  // 1 + 2^-53 + 2^-53 must round up to the next double (exact value is
  // representable): nextafter(1.0) = 1 + 2^-52.
  const double half_ulp = std::ldexp(1.0, -53);
  EXPECT_EQ(finalize_of({1.0, half_ulp, half_ulp}), 1.0 + std::ldexp(1.0, -52));
  // A single half-ulp is a tie: round-to-even keeps 1.0.
  EXPECT_EQ(finalize_of({1.0, half_ulp}), 1.0);
  // ...unless sticky bits below break the tie upward.
  EXPECT_EQ(finalize_of({1.0, half_ulp, std::ldexp(1.0, -80)}),
            1.0 + std::ldexp(1.0, -52));
}

TEST(ExactSumTest, NonFiniteFlags) {
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(finalize_of({1.0, inf}), inf);
  EXPECT_EQ(finalize_of({1.0, -inf}), -inf);
  EXPECT_TRUE(std::isnan(finalize_of({inf, -inf})));
  EXPECT_TRUE(std::isnan(finalize_of({std::nan(""), 1.0})));
  // Overflowing finite sums saturate to infinity.
  const double huge = std::numeric_limits<double>::max();
  EXPECT_EQ(finalize_of({huge, huge}), inf);
  // An all-(-0.0) sum is exact zero and finalizes to +0.0 (documented).
  const double z = finalize_of({-0.0, -0.0});
  EXPECT_EQ(z, 0.0);
  EXPECT_FALSE(std::signbit(z));
}

TEST(ExactSumTest, MergeOrderInvariant) {
  std::mt19937_64 rng(42);
  std::uniform_real_distribution<double> mag(-1e120, 1e120);
  std::uniform_int_distribution<int> exp(-300, 300);
  std::vector<double> vals;
  for (int i = 0; i < 2000; ++i)
    vals.push_back(std::ldexp(mag(rng), exp(rng) % 60));
  const double want = finalize_of(vals);
  for (int trial = 0; trial < 5; ++trial) {
    std::shuffle(vals.begin(), vals.end(), rng);
    // Random partition into 7 partial sums merged in shuffled order.
    std::vector<agg::ExactSum> parts(7);
    for (std::size_t i = 0; i < vals.size(); ++i)
      parts[i % 7].add(vals[i]);
    std::shuffle(parts.begin() + 1, parts.end(), rng);
    agg::ExactSum total;
    for (const auto& p : parts) total.merge(p);
    const double got = total.finalize();
    EXPECT_EQ(std::memcmp(&got, &want, sizeof got), 0)
        << got << " vs " << want;
  }
}

TEST(ExactSumTest, MatchesLongDoubleOnBenignData) {
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> d(-1000.0, 1000.0);
  std::vector<double> vals;
  long double ref = 0;
  for (int i = 0; i < 10000; ++i) {
    vals.push_back(d(rng));
    ref += vals.back();
  }
  EXPECT_NEAR(finalize_of(vals), static_cast<double>(ref), 1e-9);
}

// --- SQL surface -----------------------------------------------------------

TEST(AggSqlTest, ParsesAndRoundTrips) {
  const char* sql =
      "SELECT TIME, COUNT(*), SUM(SOIL), AVG(SGAS) FROM IparsData "
      "WHERE SOIL > 0.4 GROUP BY TIME ORDER BY TIME DESC LIMIT 5";
  sql::SelectQuery q = sql::parse_select(sql);
  EXPECT_TRUE(q.has_aggregates());
  EXPECT_EQ(q.group_by.size(), 1u);
  EXPECT_EQ(q.order_by.size(), 1u);
  EXPECT_TRUE(q.order_by[0].desc);
  EXPECT_EQ(q.limit, 5);
  // The canonical spelling is a fixed point of parse ∘ to_string (the plan
  // cache keys on it).
  EXPECT_EQ(sql::parse_select(q.to_string()).to_string(), q.to_string());
  EXPECT_NE(q.to_string().find("GROUP BY TIME"), std::string::npos);
  EXPECT_NE(q.to_string().find("ORDER BY TIME DESC LIMIT 5"),
            std::string::npos);
}

TEST(AggSqlTest, AggregateNamesAreNotReserved) {
  // "MIN" without '(' is an ordinary attribute name.
  sql::SelectQuery q = sql::parse_select("SELECT min FROM T WHERE max > 3");
  EXPECT_FALSE(q.has_aggregates());
  EXPECT_EQ(q.select_attrs, std::vector<std::string>{"min"});
}

TEST(AggSqlTest, RejectsMalformed) {
  EXPECT_THROW(sql::parse_select("SELECT SUM(*) FROM T"), ParseError);
  EXPECT_THROW(sql::parse_select("SELECT a FROM T LIMIT -1"), ParseError);
  EXPECT_THROW(sql::parse_select("SELECT a FROM T GROUP BY"), ParseError);
  EXPECT_THROW(sql::parse_select("SELECT a FROM T ORDER BY"), ParseError);
}

// --- end-to-end over the virtual cluster -----------------------------------

dataset::IparsConfig small_cfg() {
  dataset::IparsConfig cfg;
  cfg.nodes = 4;
  cfg.rels = 2;
  cfg.timesteps = 10;
  cfg.grid_per_node = 25;
  cfg.pad_vars = 0;
  return cfg;
}

struct Fixture {
  TempDir tmp{"aggtest"};
  dataset::GeneratedIpars gen;
  std::shared_ptr<codegen::DataServicePlan> plan;

  explicit Fixture(dataset::IparsConfig cfg = small_cfg())
      : gen(dataset::generate_ipars(cfg, dataset::IparsLayout::kL0,
                                    tmp.str())),
        plan(std::make_shared<codegen::DataServicePlan>(
            meta::parse_descriptor(gen.descriptor_text), gen.dataset_name,
            gen.root)) {}
};

bool tables_bit_identical(const expr::Table& a, const expr::Table& b) {
  if (a.num_rows() != b.num_rows() || a.columns().size() != b.columns().size())
    return false;
  for (std::size_t c = 0; c < a.columns().size(); ++c)
    if (std::memcmp(a.column(c).data(), b.column(c).data(),
                    a.num_rows() * sizeof(double)) != 0)
      return false;
  return true;
}

TEST(AggClusterTest, GroupByMatchesNaiveReference) {
  Fixture f;
  storm::StormCluster cluster(f.plan);
  storm::QueryResult r = cluster.execute(
      "SELECT TIME, COUNT(*), SUM(SOIL), MIN(SGAS), MAX(SGAS), AVG(SOIL) "
      "FROM IparsData WHERE SOIL > 0.4 GROUP BY TIME");
  ASSERT_EQ(r.first_error(), "");
  const expr::Table got = r.merged();
  ASSERT_EQ(got.columns().size(), 6u);

  // Naive reference: aggregate the oracle's raw rows client-side.
  expr::BoundQuery raw = f.plan->bind(
      "SELECT TIME, SOIL, SGAS FROM IparsData WHERE SOIL > 0.4");
  expr::Table rows = dataset::ipars_oracle(small_cfg(), raw);
  struct Ref {
    uint64_t count = 0;
    double sum = 0, mn = 0, mx = 0;
    bool seen = false;
  };
  std::map<double, Ref> ref;
  for (std::size_t i = 0; i < rows.num_rows(); ++i) {
    Ref& g = ref[rows.at(i, 0)];
    ++g.count;
    g.sum += rows.at(i, 1);
    const double sg = rows.at(i, 2);
    if (!g.seen || sg < g.mn) g.mn = sg;
    if (!g.seen || sg > g.mx) g.mx = sg;
    g.seen = true;
  }
  ASSERT_EQ(got.num_rows(), ref.size());
  // Deterministic output order: full-row lexicographic, i.e. TIME asc.
  std::size_t i = 0;
  for (const auto& [time, g] : ref) {
    EXPECT_EQ(got.at(i, 0), time);
    EXPECT_EQ(got.at(i, 1), static_cast<double>(g.count));
    EXPECT_NEAR(got.at(i, 2), g.sum, std::abs(g.sum) * 1e-9 + 1e-12);
    EXPECT_EQ(got.at(i, 3), g.mn);
    EXPECT_EQ(got.at(i, 4), g.mx);
    EXPECT_NEAR(got.at(i, 5), g.sum / g.count,
                std::abs(g.sum / g.count) * 1e-9 + 1e-12);
    ++i;
  }
  // Only aggregate state crossed the node boundary.
  EXPECT_GT(r.total_agg_bytes_shipped(), 0u);
  EXPECT_EQ(r.total_groups_emitted(), 4 * ref.size());  // 4 nodes, all keys
}

TEST(AggClusterTest, ByteIdenticalAcrossThreadCounts) {
  Fixture f;
  const char* sql =
      "SELECT TIME, AVG(SOIL), SUM(SGAS), COUNT(*) FROM IparsData "
      "WHERE SGAS < 0.8 GROUP BY TIME";
  storm::ClusterOptions one;
  one.threads_per_node = 1;
  storm::ClusterOptions many;
  many.threads_per_node = 4;
  many.min_rows_per_worker = 1;  // force real splits on this small dataset
  storm::StormCluster c1(f.plan, one);
  storm::StormCluster c4(f.plan, many);
  storm::QueryResult r1 = c1.execute(sql);
  storm::QueryResult r4 = c4.execute(sql);
  ASSERT_EQ(r1.first_error(), "");
  ASSERT_EQ(r4.first_error(), "");
  EXPECT_TRUE(tables_bit_identical(r1.merged(), r4.merged()));
  EXPECT_GT(r1.merged().num_rows(), 0u);
}

TEST(AggClusterTest, ByteIdenticalAcrossKernelTiers) {
  Fixture f;
  const char* sql =
      "SELECT REL, MIN(SOIL), MAX(OILVX), AVG(SGAS) FROM IparsData "
      "WHERE TIME BETWEEN 2 AND 9 GROUP BY REL";
  std::vector<expr::Table> results;
  for (KernelMode mode :
       {KernelMode::kInterp, KernelMode::kVector, KernelMode::kJit}) {
    storm::ClusterOptions opts;
    opts.kernel_mode = mode;
    storm::StormCluster cluster(f.plan, opts);
    storm::QueryResult r = cluster.execute(sql);
    ASSERT_EQ(r.first_error(), "");
    results.push_back(r.merged());
  }
  EXPECT_GT(results[0].num_rows(), 0u);
  EXPECT_TRUE(tables_bit_identical(results[0], results[1]));
  EXPECT_TRUE(tables_bit_identical(results[0], results[2]));
}

TEST(AggClusterTest, ShipsOrdersOfMagnitudeFewerBytes) {
  // Aggregate state is O(groups); row shipping is O(rows).  Use enough rows
  // for the contrast the acceptance criterion demands (>= 100x).
  dataset::IparsConfig cfg = small_cfg();
  cfg.grid_per_node = 700;  // 4 * 2 * 10 * 700 = 56000 rows, still 10 groups
  Fixture f(cfg);
  storm::StormCluster cluster(f.plan);
  storm::QueryResult agg = cluster.execute(
      "SELECT TIME, AVG(SOIL) FROM IparsData GROUP BY TIME");
  storm::QueryResult raw =
      cluster.execute("SELECT TIME, SOIL FROM IparsData");
  ASSERT_EQ(agg.first_error(), "");
  ASSERT_EQ(raw.first_error(), "");
  uint64_t raw_sent = 0;
  for (const auto& ns : raw.node_stats) raw_sent += ns.bytes_sent;
  const uint64_t agg_sent = agg.total_agg_bytes_shipped();
  ASSERT_GT(agg_sent, 0u);
  // The acceptance criterion: >= 100x fewer bytes than row shipping.
  EXPECT_GE(raw_sent, 100 * agg_sent)
      << "raw=" << raw_sent << " agg=" << agg_sent;
  EXPECT_EQ(raw.node_stats[0].agg_bytes_shipped, 0u);
}

TEST(AggClusterTest, StrategySelection) {
  Fixture f;
  storm::StormCluster cluster(f.plan);
  // TIME is an integer loop attribute spanning 10 values: dense.
  storm::QueryResult dense = cluster.execute(
      "SELECT TIME, COUNT(*) FROM IparsData GROUP BY TIME");
  uint64_t d = 0, h = 0;
  for (const auto& ns : dense.node_stats) d += ns.agg_dense;
  EXPECT_GT(d, 0u);
  // SOIL is float-typed: never dense, hash by default.
  storm::QueryResult hash = cluster.execute(
      "SELECT SOIL, COUNT(*) FROM IparsData GROUP BY SOIL");
  for (const auto& ns : hash.node_stats) h += ns.agg_hash + ns.agg_radix;
  EXPECT_GT(h, 0u);
  EXPECT_EQ(hash.node_stats[0].agg_dense, 0u);
}

TEST(AggClusterTest, RadixUpgradeOnHighCardinality) {
  dataset::IparsConfig cfg = small_cfg();
  cfg.timesteps = 40;
  cfg.grid_per_node = 150;  // 2 * 40 * 150 = 12000 rows per node
  Fixture f(cfg);
  storm::StormCluster cluster(f.plan);
  storm::QueryResult r = cluster.execute(
      "SELECT SOIL, COUNT(*) FROM IparsData GROUP BY SOIL");
  ASSERT_EQ(r.first_error(), "");
  uint64_t radix = 0;
  for (const auto& ns : r.node_stats) radix += ns.agg_radix;
  EXPECT_GT(radix, 0u) << "expected the hash table to upgrade itself";
  EXPECT_GT(r.merged().num_rows(), agg::kRadixUpgradeGroups);
}

TEST(AggClusterTest, TopKMatchesSortedOracle) {
  Fixture f;
  storm::StormCluster cluster(f.plan);
  storm::QueryResult r = cluster.execute(
      "SELECT REL, TIME, SGAS FROM IparsData WHERE SOIL > 0.2 "
      "ORDER BY SGAS DESC LIMIT 7");
  ASSERT_EQ(r.first_error(), "");
  const expr::Table got = r.merged();
  ASSERT_EQ(got.num_rows(), 7u);
  // Reference: sort the oracle rows by SGAS desc (ties by row lex).
  expr::BoundQuery raw = f.plan->bind(
      "SELECT REL, TIME, SGAS FROM IparsData WHERE SOIL > 0.2");
  expr::Table rows = dataset::ipars_oracle(small_cfg(), raw);
  std::vector<std::vector<double>> all;
  for (std::size_t i = 0; i < rows.num_rows(); ++i)
    all.push_back({rows.at(i, 0), rows.at(i, 1), rows.at(i, 2)});
  std::sort(all.begin(), all.end(), [](const auto& a, const auto& b) {
    if (a[2] != b[2]) return a[2] > b[2];
    return a < b;
  });
  for (std::size_t i = 0; i < 7; ++i) {
    EXPECT_EQ(got.at(i, 0), all[i][0]);
    EXPECT_EQ(got.at(i, 1), all[i][1]);
    EXPECT_EQ(got.at(i, 2), all[i][2]);
  }
  // LIMIT without ORDER BY: the lexicographically smallest rows, total
  // count capped.
  storm::QueryResult lim =
      cluster.execute("SELECT REL, TIME FROM IparsData LIMIT 3");
  EXPECT_EQ(lim.merged().num_rows(), 3u);
}

TEST(AggClusterTest, GroupedTopK) {
  Fixture f;
  storm::StormCluster cluster(f.plan);
  storm::QueryResult all = cluster.execute(
      "SELECT TIME, SUM(SOIL) FROM IparsData GROUP BY TIME "
      "ORDER BY SUM(SOIL) DESC");
  storm::QueryResult top = cluster.execute(
      "SELECT TIME, SUM(SOIL) FROM IparsData GROUP BY TIME "
      "ORDER BY SUM(SOIL) DESC LIMIT 3");
  ASSERT_EQ(all.first_error(), "");
  ASSERT_EQ(top.first_error(), "");
  const expr::Table at = all.merged(), tt = top.merged();
  ASSERT_EQ(tt.num_rows(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(tt.at(i, 0), at.at(i, 0));
    EXPECT_EQ(tt.at(i, 1), at.at(i, 1));
  }
}

TEST(AggClusterTest, IoFaultRetryDoesNotDoubleCount) {
  Fixture f;
  storm::ClusterOptions opts;
  opts.io_mode = IoMode::kPread;  // pread.* fault sites live on this path
  storm::StormCluster cluster(f.plan, opts);
  const char* sql =
      "SELECT TIME, COUNT(*), SUM(SOIL) FROM IparsData GROUP BY TIME";
  storm::QueryResult clean = cluster.execute(sql);
  ASSERT_EQ(clean.first_error(), "");
  uint64_t retries = 0;
  expr::Table faulted;
  {
    faultz::ScopedFaultPlan scope(11, "pread.eio=0.3:6");
    storm::QueryResult r = cluster.execute(sql);
    ASSERT_EQ(r.first_error(), "") << "retry budget should absorb the faults";
    retries = r.total_io_retries();
    faulted = r.merged();
  }
  EXPECT_GT(retries, 0u) << "campaign never fired; the test is vacuous";
  EXPECT_TRUE(tables_bit_identical(clean.merged(), faulted));
}

TEST(AggClusterTest, AggMergeFaultIsTypedNodeError) {
  Fixture f;
  storm::StormCluster cluster(f.plan);
  faultz::ScopedFaultPlan scope(3, "agg.merge=1:1");
  storm::QueryResult r = cluster.execute(
      "SELECT TIME, COUNT(*) FROM IparsData GROUP BY TIME");
  EXPECT_EQ(r.failed_nodes().size(), 1u);
  EXPECT_EQ(r.first_error_kind(), ErrorKind::kIo);
  // Partial results: aggregates over the surviving nodes only.
  storm::QueryResult clean = cluster.execute(
      "SELECT TIME, COUNT(*) FROM IparsData GROUP BY TIME");
  EXPECT_LT(r.merged().at(0, 1), clean.merged().at(0, 1));
}

TEST(AggClusterTest, CountOverflowIsQueryError) {
  agg::ItemState st;
  st.count = (uint64_t{1} << 53) + 1;
  EXPECT_THROW(st.finalize(sql::AggFn::kCount), QueryError);
  EXPECT_THROW(st.finalize(sql::AggFn::kAvg), QueryError);
}

TEST(AggClusterTest, EmptyGroupSemantics) {
  Fixture f;
  storm::StormCluster cluster(f.plan);
  // A predicate matching nothing: zero groups, zero rows out.
  storm::QueryResult none = cluster.execute(
      "SELECT TIME, COUNT(*) FROM IparsData WHERE SOIL > 99 GROUP BY TIME");
  ASSERT_EQ(none.first_error(), "");
  EXPECT_EQ(none.merged().num_rows(), 0u);
  // Global aggregate over zero rows: one row, COUNT 0, SUM +0.0, AVG/MIN/
  // MAX NaN (documented empty-input semantics).
  storm::QueryResult glob = cluster.execute(
      "SELECT COUNT(*), SUM(SOIL), AVG(SOIL), MIN(SOIL) FROM IparsData "
      "WHERE SOIL > 99");
  ASSERT_EQ(glob.first_error(), "");
  const expr::Table t = glob.merged();
  ASSERT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.at(0, 0), 0.0);
  EXPECT_EQ(t.at(0, 1), 0.0);
  EXPECT_FALSE(std::signbit(t.at(0, 1)));
  EXPECT_TRUE(std::isnan(t.at(0, 2)));
  EXPECT_TRUE(std::isnan(t.at(0, 3)));
}

TEST(AggClusterTest, BindRejectsBadShapes) {
  Fixture f;
  EXPECT_THROW(f.plan->bind("SELECT SOIL, COUNT(*) FROM IparsData "
                            "GROUP BY TIME"),
               QueryError);  // SOIL not grouped or aggregated
  EXPECT_THROW(f.plan->bind("SELECT * FROM IparsData GROUP BY TIME"),
               QueryError);  // * with GROUP BY
  EXPECT_THROW(f.plan->bind("SELECT TIME, COUNT(*) FROM IparsData "
                            "GROUP BY TIME ORDER BY SOIL"),
               QueryError);  // ORDER BY key absent from the select list
  EXPECT_THROW(f.plan->bind("SELECT TIME FROM IparsData GROUP BY TIME, "
                            "TIME"),
               QueryError);  // duplicate group key
}

}  // namespace
}  // namespace adv
