// Tests for XML descriptor interchange: the generic XML subset parser and
// the Descriptor <-> XML mapping (paper §3.1: the description language
// "can easily be embedded in an XML file and made machine independent").
#include <gtest/gtest.h>

#include "codegen/plan.h"
#include "common/tempdir.h"
#include "dataset/ipars.h"
#include "dataset/titan_st.h"
#include "metadata/xml.h"

namespace adv::meta {
namespace {

// ---------------------------------------------------------------------------
// Generic XML parser

TEST(XmlParserTest, ElementsAttributesText) {
  XmlNode root = parse_xml(
      "<?xml version=\"1.0\"?>\n"
      "<root a=\"1\" b='two'>\n"
      "  <child>hello</child>\n"
      "  <empty/>\n"
      "  <child>world</child>\n"
      "</root>");
  EXPECT_EQ(root.name, "root");
  EXPECT_EQ(root.attr("a"), "1");
  EXPECT_EQ(root.attr("b"), "two");
  EXPECT_EQ(root.attr("c", "dflt"), "dflt");
  EXPECT_TRUE(root.has_attr("a"));
  EXPECT_FALSE(root.has_attr("z"));
  ASSERT_EQ(root.children.size(), 3u);
  EXPECT_EQ(root.children_named("child").size(), 2u);
  EXPECT_EQ(root.children_named("child")[1]->text, "world");
  EXPECT_NE(root.child("empty"), nullptr);
  EXPECT_EQ(root.child("missing"), nullptr);
}

TEST(XmlParserTest, EntitiesCommentsCdata) {
  XmlNode root = parse_xml(
      "<r note=\"a &lt; b &amp; c\">"
      "<!-- a comment <with brackets> -->"
      "x &gt; y"
      "<![CDATA[raw <text> & stuff]]>"
      "</r>");
  EXPECT_EQ(root.attr("note"), "a < b & c");
  EXPECT_EQ(root.text, "x > yraw <text> & stuff");
}

TEST(XmlParserTest, Errors) {
  EXPECT_THROW(parse_xml("<a><b></a>"), ParseError);       // mismatched
  EXPECT_THROW(parse_xml("<a>"), ParseError);              // unterminated
  EXPECT_THROW(parse_xml("<a x=1/>"), ParseError);         // unquoted attr
  EXPECT_THROW(parse_xml("<a>&unknown;</a>"), ParseError); // bad entity
  EXPECT_THROW(parse_xml("<a/><b/>"), ParseError);         // two roots
  EXPECT_THROW(parse_xml("<a><![CDATA[x]]</a>"), ParseError);
}

TEST(XmlParserTest, RoundTripThroughSerializer) {
  XmlNode root = parse_xml(
      "<r a=\"v&quot;q\"><x>text</x><y n=\"2\"/></r>");
  std::string text = to_xml_text(root);
  XmlNode again = parse_xml(text);
  EXPECT_EQ(again.attr("a"), "v\"q");
  EXPECT_EQ(again.child("x")->text, "text");
  EXPECT_EQ(again.child("y")->attr("n"), "2");
}

// ---------------------------------------------------------------------------
// Descriptor embedding

const char* kXmlDescriptor = R"(<?xml version="1.0"?>
<descriptor>
  <schema name="IPARS">
    <attribute name="REL" type="short int"/>
    <attribute name="TIME" type="int"/>
    <attribute name="X" type="float"/>
    <attribute name="Y" type="float"/>
    <attribute name="Z" type="float"/>
    <attribute name="SOIL" type="float"/>
    <attribute name="SGAS" type="float"/>
  </schema>
  <storage dataset="IparsData" schema="IPARS">
    <dir index="0" path="osu0/ipars"/>
    <dir index="1" path="osu1/ipars"/>
  </storage>
  <dataset name="IparsData" datatype="IPARS">
    <dataindex>REL TIME</dataindex>
    <dataset name="ipars1">
      <dataspace>
        <loop ident="GRID" range="($DIRID*100+1):(($DIRID+1)*100):1">
          <fields>X Y Z</fields>
        </loop>
      </dataspace>
      <data>
        <file pattern="DIR[$DIRID]/COORDS">
          <bind var="DIRID" range="0:1:1"/>
        </file>
      </data>
    </dataset>
    <dataset name="ipars2">
      <dataspace>
        <loop ident="TIME" range="1:500:1">
          <loop ident="GRID" range="($DIRID*100+1):(($DIRID+1)*100):1">
            <fields>SOIL SGAS</fields>
          </loop>
        </loop>
      </dataspace>
      <data>
        <file pattern="DIR[$DIRID]/DATA$REL">
          <bind var="REL" range="0:3:1"/>
          <bind var="DIRID" range="0:1:1"/>
        </file>
      </data>
    </dataset>
  </dataset>
</descriptor>
)";

TEST(XmlDescriptorTest, ParsesTheFigure4Example) {
  Descriptor d = parse_descriptor_xml(kXmlDescriptor);
  ASSERT_EQ(d.schemas.size(), 1u);
  EXPECT_EQ(d.schemas[0].attrs.size(), 7u);
  EXPECT_EQ(d.schemas[0].attrs[0].type, DataType::kInt16);
  ASSERT_EQ(d.storages.size(), 1u);
  EXPECT_EQ(d.storages[0].dirs[1].node_name, "osu1");
  ASSERT_EQ(d.datasets.size(), 1u);
  const DatasetDecl& top = d.datasets[0];
  ASSERT_EQ(top.children.size(), 2u);
  EXPECT_EQ(top.dataindex, (std::vector<std::string>{"REL", "TIME"}));
  const DatasetDecl& ipars2 = top.children[1];
  EXPECT_EQ(ipars2.datatype, "IPARS");  // inherited
  ASSERT_EQ(ipars2.files.size(), 1u);
  EXPECT_EQ(ipars2.files[0].bindings.size(), 2u);
  EXPECT_EQ(ipars2.files[0].segs.size(), 3u);
  EXPECT_EQ(ipars2.dataspace[0].loop_ident, "TIME");
}

TEST(XmlDescriptorTest, EquivalentToTextForm) {
  Descriptor from_xml = parse_descriptor_xml(kXmlDescriptor);
  // The canonical text of the XML-parsed descriptor re-parses identically.
  std::string text = to_text(from_xml);
  Descriptor from_text = parse_descriptor(text);
  EXPECT_EQ(to_text(from_text), text);
  EXPECT_EQ(to_xml(from_text), to_xml(from_xml));
}

TEST(XmlDescriptorTest, RoundTripsEveryGeneratedLayout) {
  dataset::IparsConfig cfg;
  cfg.nodes = 2;
  cfg.rels = 2;
  cfg.timesteps = 5;
  cfg.grid_per_node = 8;
  cfg.pad_vars = 1;
  for (auto layout : dataset::all_ipars_layouts()) {
    Descriptor d1 =
        parse_descriptor(dataset::ipars_descriptor_text(cfg, layout));
    std::string xml = to_xml(d1);
    Descriptor d2 = parse_descriptor_xml(xml);
    EXPECT_EQ(to_text(d2), to_text(d1))
        << "layout " << dataset::to_string(layout);
  }
}

TEST(XmlDescriptorTest, XmlDescriptorServesQueries) {
  // End to end: generate data with the text descriptor, query it through
  // the XML form of the same descriptor.
  dataset::IparsConfig cfg;
  cfg.nodes = 2;
  cfg.rels = 2;
  cfg.timesteps = 6;
  cfg.grid_per_node = 10;
  cfg.pad_vars = 0;
  TempDir tmp("xml");
  auto gen = dataset::generate_ipars(cfg, dataset::IparsLayout::kV, tmp.str());
  std::string xml = to_xml(parse_descriptor(gen.descriptor_text));

  codegen::DataServicePlan plan(parse_descriptor_xml(xml), "IparsData",
                                gen.root);
  EXPECT_TRUE(plan.verify_files().empty());
  expr::BoundQuery q = plan.bind(
      "SELECT * FROM IparsData WHERE TIME <= 3 AND SOIL > 0.5");
  expr::Table got = plan.execute(q);
  EXPECT_TRUE(got.same_rows(dataset::ipars_oracle(cfg, q)));
}

TEST(XmlDescriptorTest, ColmajorLoopOrderAttribute) {
  // order="colmajor" survives XML -> Descriptor -> XML, and maps onto the
  // text form's COLMAJOR keyword.
  const char* xml = R"(<descriptor>
    <schema name="S"><attribute name="A" type="int"/>
      <attribute name="B" type="float"/></schema>
    <storage dataset="DS" schema="S"><dir index="0" path="n/d"/></storage>
    <dataset name="DS">
      <dataspace>
        <loop ident="T" range="1:2:1">
          <loop ident="I" range="1:4:1" order="colmajor">
            <fields>A B</fields>
          </loop>
        </loop>
      </dataspace>
      <data><file pattern="f"/></data>
    </dataset>
  </descriptor>)";
  Descriptor d = parse_descriptor_xml(xml);
  ASSERT_EQ(d.datasets.size(), 1u);
  const LayoutNode& rec = d.datasets[0].dataspace[0].body[0];
  EXPECT_TRUE(rec.colmajor);
  EXPECT_NE(to_text(d).find("COLMAJOR"), std::string::npos);
  EXPECT_NE(to_xml(d).find("order=\"colmajor\""), std::string::npos);
  Descriptor again = parse_descriptor_xml(to_xml(d));
  EXPECT_EQ(to_text(again), to_text(d));
}

TEST(XmlDescriptorTest, BadLoopOrderRejected) {
  // Any order other than rowmajor/colmajor is a typed error, and a
  // colmajor structure loop is rejected by the same validation as the
  // text form (table-driven alongside ValidateTest.LayoutErrorTable).
  struct Case {
    const char* name;
    const char* xml;
  };
  const Case kCases[] = {
      {"unknown-order",
       R"(<descriptor>
         <schema name="S"><attribute name="A" type="int"/></schema>
         <storage dataset="DS" schema="S"><dir index="0" path="n/d"/></storage>
         <dataset name="DS">
           <dataspace><loop ident="I" range="1:2:1" order="diagonal">
             <fields>A</fields></loop></dataspace>
           <data><file pattern="f"/></data>
         </dataset>
       </descriptor>)"},
      {"colmajor-structure-loop",
       R"(<descriptor>
         <schema name="S"><attribute name="A" type="int"/></schema>
         <storage dataset="DS" schema="S"><dir index="0" path="n/d"/></storage>
         <dataset name="DS">
           <dataspace><loop ident="T" range="1:2:1" order="colmajor">
             <loop ident="I" range="1:2:1"><fields>A</fields></loop>
           </loop></dataspace>
           <data><file pattern="f"/></data>
         </dataset>
       </descriptor>)"},
  };
  for (const Case& c : kCases) {
    SCOPED_TRACE(c.name);
    EXPECT_THROW(parse_descriptor_xml(c.xml), ValidationError);
  }
}

TEST(XmlDescriptorTest, RoundTripsTheSpatioTemporalGrid) {
  // The Titan-style chunked (TIME, LAT, LON) descriptor — per-chunk
  // headers and all — survives the XML interchange form.
  dataset::TitanStConfig cfg;
  cfg.nodes = 2;
  cfg.lat_chunks = 2;
  cfg.lon_chunks = 2;
  cfg.timesteps = 4;
  cfg.cells_per_chunk = 8;
  Descriptor d1 = parse_descriptor(dataset::titan_st_descriptor_text(cfg));
  Descriptor d2 = parse_descriptor_xml(to_xml(d1));
  EXPECT_EQ(to_text(d2), to_text(d1));
}

TEST(XmlDescriptorTest, ValidationStillApplies) {
  // Unknown attribute in the dataspace must be rejected like in text form.
  const char* bad = R"(<descriptor>
    <schema name="S"><attribute name="A" type="int"/></schema>
    <storage dataset="DS" schema="S"><dir index="0" path="n/d"/></storage>
    <dataset name="DS">
      <dataspace><loop ident="I" range="1:2:1"><fields>NOPE</fields></loop>
      </dataspace>
      <data><file pattern="f"/></data>
    </dataset>
  </descriptor>)";
  EXPECT_THROW(parse_descriptor_xml(bad), ValidationError);
  EXPECT_THROW(parse_descriptor_xml("<notdescriptor/>"), ValidationError);
}

}  // namespace
}  // namespace adv::meta
