// Tests for the meta-data description language: arithmetic expressions,
// the section and layout parsers, validation, and pretty-print round-trips.
#include <gtest/gtest.h>

#include "common/error.h"
#include "metadata/model.h"

namespace adv::meta {
namespace {

// The running example of the paper (Figure 4), spelled in our concrete
// syntax: the IPARS dataset with a COORDS file per node and one file per
// (realization, node) holding SOIL/SGAS for all time steps.
const char* kIparsDescriptor = R"(
// {* Component I: Dataset Schema Description *}
[IPARS]
REL = short int
TIME = int
X = float
Y = float
Z = float
SOIL = float
SGAS = float

// {* Component II: Dataset Storage Description *}
[IparsData]
DatasetDescription = IPARS
DIR[0] = osu0/ipars
DIR[1] = osu1/ipars
DIR[2] = osu2/ipars
DIR[3] = osu3/ipars

// {* Component III: Dataset Layout Description *}
DATASET "IparsData" {
  DATATYPE { IPARS }
  DATAINDEX { REL TIME }
  DATA { DATASET ipars1 DATASET ipars2 }
  DATASET "ipars1" {
    DATASPACE {
      LOOP GRID ($DIRID*100+1):(($DIRID+1)*100):1 {
        X Y Z
      }
    }
    DATA { DIR[$DIRID]/COORDS DIRID = 0:3:1 }
  }
  DATASET "ipars2" {
    DATASPACE {
      LOOP TIME 1:500:1 {
        LOOP GRID ($DIRID*100+1):(($DIRID+1)*100):1 {
          SOIL SGAS
        }
      }
    }
    DATA { DIR[$DIRID]/DATA$REL REL = 0:3:1 DIRID = 0:3:1 }
  }
}
)";

// ---------------------------------------------------------------------------
// Arithmetic expressions

TEST(ArithTest, EvalRespectsPrecedence) {
  VarEnv env;
  env.set("DIRID", 2);
  EXPECT_EQ(parse_arith("$DIRID*100+1")->eval(env), 201);
  EXPECT_EQ(parse_arith("($DIRID+1)*100")->eval(env), 300);
  EXPECT_EQ(parse_arith("2+3*4")->eval(env), 14);
  EXPECT_EQ(parse_arith("(2+3)*4")->eval(env), 20);
  EXPECT_EQ(parse_arith("7/2")->eval(env), 3);
  EXPECT_EQ(parse_arith("7%3")->eval(env), 1);
  EXPECT_EQ(parse_arith("-3+10")->eval(env), 7);
}

TEST(ArithTest, BareIdentifierIsVariable) {
  VarEnv env;
  env.set("DIRID", 5);
  EXPECT_EQ(parse_arith("DIRID*10")->eval(env), 50);
}

TEST(ArithTest, UnboundVariableThrows) {
  VarEnv env;
  EXPECT_THROW(parse_arith("$NOPE")->eval(env), ValidationError);
}

TEST(ArithTest, DivisionByZeroThrows) {
  VarEnv env;
  EXPECT_THROW(parse_arith("1/0")->eval(env), ValidationError);
  EXPECT_THROW(parse_arith("1%0")->eval(env), ValidationError);
}

TEST(ArithTest, IsConstantAndCollectVars) {
  EXPECT_TRUE(parse_arith("3*(4+5)")->is_constant());
  EXPECT_FALSE(parse_arith("3*$X")->is_constant());
  std::vector<std::string> vars;
  parse_arith("$A+$B*$A")->collect_vars(vars);
  EXPECT_EQ(vars.size(), 2u);
}

TEST(ArithTest, RangeCount) {
  VarEnv env;
  auto parse_rng = [](const std::string& s) {
    TokenCursor cur(tokenize(s));
    return parse_range(cur);
  };
  EXPECT_EQ(parse_rng("1:500:1").count(env), 500);
  EXPECT_EQ(parse_rng("0:3:1").count(env), 4);
  EXPECT_EQ(parse_rng("1:10:3").count(env), 4);  // 1,4,7,10
  EXPECT_EQ(parse_rng("5:4:1").count(env), 0);   // empty
  EXPECT_EQ(parse_rng("7:7").count(env), 1);     // step defaults to 1
  EXPECT_THROW(parse_rng("1:10:0").count(env), ValidationError);
}

// ---------------------------------------------------------------------------
// Full descriptor parse (the paper's Figure 4)

TEST(DescriptorTest, ParsesPaperExample) {
  Descriptor d = parse_descriptor(kIparsDescriptor);

  ASSERT_EQ(d.schemas.size(), 1u);
  const Schema& s = d.schemas[0];
  EXPECT_EQ(s.name, "IPARS");
  ASSERT_EQ(s.attrs.size(), 7u);
  EXPECT_EQ(s.attrs[0].name, "REL");
  EXPECT_EQ(s.attrs[0].type, DataType::kInt16);
  EXPECT_EQ(s.attrs[1].name, "TIME");
  EXPECT_EQ(s.attrs[1].type, DataType::kInt32);
  EXPECT_EQ(s.row_bytes(), 2u + 4u + 5u * 4u);
  EXPECT_EQ(s.find("SGAS"), 6);
  EXPECT_EQ(s.find("NOPE"), -1);

  ASSERT_EQ(d.storages.size(), 1u);
  const Storage& st = d.storages[0];
  EXPECT_EQ(st.dataset_name, "IparsData");
  EXPECT_EQ(st.schema_name, "IPARS");
  ASSERT_EQ(st.dirs.size(), 4u);
  EXPECT_EQ(st.dirs[2].path, "osu2/ipars");
  EXPECT_EQ(st.dirs[2].node_name, "osu2");
  EXPECT_EQ(st.node_names().size(), 4u);

  ASSERT_EQ(d.datasets.size(), 1u);
  const DatasetDecl& top = d.datasets[0];
  EXPECT_EQ(top.name, "IparsData");
  EXPECT_EQ(top.datatype, "IPARS");
  ASSERT_EQ(top.dataindex.size(), 2u);
  EXPECT_EQ(top.dataindex[0], "REL");
  EXPECT_FALSE(top.is_leaf());
  ASSERT_EQ(top.children.size(), 2u);
  ASSERT_EQ(top.child_order.size(), 2u);

  const DatasetDecl& ipars1 = top.children[0];
  EXPECT_EQ(ipars1.name, "ipars1");
  EXPECT_EQ(ipars1.datatype, "IPARS");  // inherited
  EXPECT_TRUE(ipars1.is_leaf());
  ASSERT_EQ(ipars1.dataspace.size(), 1u);
  const LayoutNode& grid = ipars1.dataspace[0];
  EXPECT_EQ(grid.kind, LayoutNode::Kind::kLoop);
  EXPECT_EQ(grid.loop_ident, "GRID");
  ASSERT_EQ(grid.body.size(), 1u);
  EXPECT_EQ(grid.body[0].kind, LayoutNode::Kind::kFields);
  EXPECT_EQ(grid.body[0].fields, (std::vector<std::string>{"X", "Y", "Z"}));
  VarEnv env;
  env.set("DIRID", 1);
  EXPECT_EQ(grid.range.lo->eval(env), 101);
  EXPECT_EQ(grid.range.hi->eval(env), 200);
  EXPECT_EQ(grid.range.count(env), 100);

  ASSERT_EQ(ipars1.files.size(), 1u);
  const FilePattern& fp1 = ipars1.files[0];
  ASSERT_EQ(fp1.segs.size(), 2u);
  EXPECT_EQ(fp1.segs[0].kind, PatternSeg::Kind::kDirRef);
  EXPECT_EQ(fp1.segs[1].kind, PatternSeg::Kind::kLiteral);
  EXPECT_EQ(fp1.segs[1].literal, "/COORDS");
  ASSERT_EQ(fp1.bindings.size(), 1u);
  EXPECT_EQ(fp1.bindings[0].var, "DIRID");

  const DatasetDecl& ipars2 = top.children[1];
  ASSERT_EQ(ipars2.files.size(), 1u);
  const FilePattern& fp2 = ipars2.files[0];
  ASSERT_EQ(fp2.segs.size(), 3u);
  EXPECT_EQ(fp2.segs[2].kind, PatternSeg::Kind::kVarRef);
  EXPECT_EQ(fp2.segs[2].var, "REL");
  ASSERT_EQ(fp2.bindings.size(), 2u);
  // Nested loop structure: TIME { GRID { SOIL SGAS } }.
  const LayoutNode& time_loop = ipars2.dataspace[0];
  EXPECT_EQ(time_loop.loop_ident, "TIME");
  EXPECT_EQ(time_loop.body[0].loop_ident, "GRID");
  EXPECT_EQ(time_loop.body[0].body[0].fields,
            (std::vector<std::string>{"SOIL", "SGAS"}));

  EXPECT_EQ(d.find_dataset("ipars2"), &ipars2);
  EXPECT_EQ(&d.schema_of(ipars2), &s);
}

TEST(DescriptorTest, QuotedPatternParsesSameAsUnquoted) {
  std::string text = R"(
[S]
A = int
[DS]
DatasetDescription = S
DIR[0] = n0/d
DATASET "DS" {
  DATASPACE { LOOP I 1:10:1 { A } }
  DATA { "DIR[$DIRID]/file$V" V = 1:2:1 DIRID = 0:0:1 }
}
)";
  Descriptor d = parse_descriptor(text);
  const FilePattern& fp = d.datasets[0].files[0];
  ASSERT_EQ(fp.segs.size(), 3u);
  EXPECT_EQ(fp.segs[0].kind, PatternSeg::Kind::kDirRef);
  EXPECT_EQ(fp.segs[1].literal, "/file");
  EXPECT_EQ(fp.segs[2].var, "V");
}

TEST(DescriptorTest, RoundTripsThroughPrettyPrinter) {
  Descriptor d1 = parse_descriptor(kIparsDescriptor);
  std::string text = to_text(d1);
  Descriptor d2 = parse_descriptor(text);
  EXPECT_EQ(to_text(d2), text);
  EXPECT_EQ(d2.schemas.size(), d1.schemas.size());
  EXPECT_EQ(d2.datasets[0].children.size(), 2u);
}

TEST(DescriptorTest, LocalDatatypeAttributes) {
  std::string text = R"(
[S]
A = int
[DS]
DatasetDescription = S
DIR[0] = n0/d
DATASET "DS" {
  DATATYPE { S EXTRA = float }
  DATASPACE { LOOP I 1:4:1 { A EXTRA } }
  DATA { f }
}
)";
  Descriptor d = parse_descriptor(text);
  ASSERT_EQ(d.datasets[0].local_attrs.size(), 1u);
  EXPECT_EQ(d.datasets[0].local_attrs[0].name, "EXTRA");
  EXPECT_EQ(d.datasets[0].local_attrs[0].type, DataType::kFloat32);
}

// ---------------------------------------------------------------------------
// Validation failures

// Helper: wraps a layout body into a minimal single-schema descriptor.
std::string with_layout(const std::string& layout_body) {
  return "[S]\nA = int\nB = float\n[DS]\nDatasetDescription = S\n"
         "DIR[0] = n0/d\nDIR[1] = n1/d\n" +
         layout_body;
}

TEST(ValidateTest, UnknownAttributeInDataspace) {
  EXPECT_THROW(parse_descriptor(with_layout(
                   "DATASET \"DS\" { DATASPACE { LOOP I 1:2:1 { NOPE } } "
                   "DATA { f } }")),
               ValidationError);
}

TEST(ValidateTest, UnknownSchemaInStorage) {
  EXPECT_THROW(parse_descriptor("[DS]\nDatasetDescription = MISSING\n"
                                "DIR[0] = n0/d\n"),
               ValidationError);
}

TEST(ValidateTest, MixedLoopBodyRejected) {
  EXPECT_THROW(
      parse_descriptor(with_layout(
          "DATASET \"DS\" { DATASPACE { LOOP I 1:2:1 { A LOOP J 1:2:1 { B } "
          "} } DATA { f } }")),
      ValidationError);
}

TEST(ValidateTest, TopLevelFieldsRejected) {
  EXPECT_THROW(parse_descriptor(with_layout(
                   "DATASET \"DS\" { DATASPACE { A B } DATA { f } }")),
               ValidationError);
}

TEST(ValidateTest, NestedDuplicateLoopIdentRejected) {
  EXPECT_THROW(
      parse_descriptor(with_layout(
          "DATASET \"DS\" { DATASPACE { LOOP I 1:2:1 { LOOP I 1:2:1 { A } } "
          "} DATA { f } }")),
      ValidationError);
}

TEST(ValidateTest, SiblingSameLoopIdentAllowed) {
  EXPECT_NO_THROW(parse_descriptor(with_layout(
      "DATASET \"DS\" { DATASPACE { LOOP T 1:2:1 { LOOP I 1:2:1 { A } LOOP "
      "I 1:2:1 { B } } } DATA { f } }")));
}

TEST(ValidateTest, TriangularLoopRejected) {
  EXPECT_THROW(
      parse_descriptor(with_layout(
          "DATASET \"DS\" { DATASPACE { LOOP I 1:5:1 { LOOP J 1:$I:1 { A } } "
          "} DATA { f } }")),
      ValidationError);
}

TEST(ValidateTest, UnboundLoopBoundVariableRejected) {
  EXPECT_THROW(
      parse_descriptor(with_layout(
          "DATASET \"DS\" { DATASPACE { LOOP I ($Q*2):10:1 { A } } DATA { f "
          "} }")),
      ValidationError);
}

TEST(ValidateTest, NonConstantBindingRejected) {
  EXPECT_THROW(
      parse_descriptor(with_layout(
          "DATASET \"DS\" { DATASPACE { LOOP I 1:2:1 { A } } DATA { f$V V = "
          "0:$W:1 } }")),
      ValidationError);
}

TEST(ValidateTest, DirIndexOutOfRangeRejected) {
  EXPECT_THROW(
      parse_descriptor(with_layout(
          "DATASET \"DS\" { DATASPACE { LOOP I 1:2:1 { A } } DATA { "
          "DIR[7]/f } }")),
      ValidationError);
}

TEST(ValidateTest, UnboundPatternVariableRejected) {
  EXPECT_THROW(
      parse_descriptor(with_layout(
          "DATASET \"DS\" { DATASPACE { LOOP I 1:2:1 { A } } DATA { f$NOPE "
          "} }")),
      ValidationError);
}

TEST(ValidateTest, DataIndexMustNameSchemaAttributes) {
  EXPECT_THROW(
      parse_descriptor(with_layout(
          "DATASET \"DS\" { DATAINDEX { NOPE } DATASPACE { LOOP I 1:2:1 { A "
          "} } DATA { f } }")),
      ValidationError);
}

TEST(ValidateTest, LeafNeedsDataspaceAndFiles) {
  EXPECT_THROW(parse_descriptor(
                   with_layout("DATASET \"DS\" { DATA { f } }")),
               ValidationError);
  EXPECT_THROW(parse_descriptor(with_layout(
                   "DATASET \"DS\" { DATASPACE { LOOP I 1:2:1 { A } } }")),
               ValidationError);
}

// Table-driven corner cases for the layout families: each row is a layout
// body plus a substring the ValidationError message must carry, so a
// regressed check fails with the offending descriptor in the test output.
TEST(ValidateTest, LayoutErrorTable) {
  struct Case {
    const char* name;
    const char* layout;
    const char* expect;  // substring of the ValidationError message
  };
  const Case kCases[] = {
      {"colmajor-structure-loop",
       "DATASET \"DS\" { DATASPACE { LOOP T 1:2:1 COLMAJOR { LOOP I 1:2:1 "
       "{ A B } } } DATA { f } }",
       "contains nested loops"},
      {"colmajor-mixed-body",
       "DATASET \"DS\" { DATATYPE { S HDR = int } DATASPACE { LOOP I 1:2:1 "
       "COLMAJOR { HDR LOOP J 1:2:1 { A } } } DATA { f } }",
       "contains nested loops"},
      {"schema-attr-beside-loop",
       "DATASET \"DS\" { DATASPACE { LOOP T 1:2:1 { A LOOP I 1:2:1 { B } } "
       "} DATA { f } }",
       "mixes schema attribute 'A' with nested loops"},
      {"empty-loop-body",
       "DATASET \"DS\" { DATASPACE { LOOP I 1:2:1 { } } DATA { f } }",
       "has an empty body"},
      {"triangular-bound",
       "DATASET \"DS\" { DATASPACE { LOOP I 1:4:1 { LOOP J 1:$I:1 { A } } } "
       "DATA { f } }",
       "triangular loop nests are not supported"},
      {"unbound-bound-variable",
       "DATASET \"DS\" { DATASPACE { LOOP I 1:$N:1 { A } } DATA { f } }",
       "not bound by every file pattern"},
      {"unknown-field-in-record-loop",
       "DATASET \"DS\" { DATASPACE { LOOP I 1:2:1 { A NOPE } } DATA { f } }",
       "unknown attribute 'NOPE'"},
      {"unknown-field-in-header-run",
       "DATASET \"DS\" { DATASPACE { LOOP T 1:2:1 { NOPE LOOP I 1:2:1 { A } "
       "} } DATA { f } }",
       "unknown attribute 'NOPE'"},
  };
  for (const Case& c : kCases) {
    SCOPED_TRACE(c.name);
    try {
      parse_descriptor(with_layout(c.layout));
      ADD_FAILURE() << "expected ValidationError containing \"" << c.expect
                    << "\"";
    } catch (const ValidationError& e) {
      EXPECT_NE(std::string(e.what()).find(c.expect), std::string::npos)
          << "message: " << e.what();
    }
  }
}

// COLMAJOR on a record loop is the legal form, and it survives a
// pretty-print round trip.
TEST(ValidateTest, ColmajorRecordLoopRoundTrips) {
  Descriptor d = parse_descriptor(with_layout(
      "DATASET \"DS\" { DATASPACE { LOOP T 1:2:1 { LOOP I 1:4:1 COLMAJOR { "
      "A B } } } DATA { f } }"));
  const std::string printed = to_text(d);
  EXPECT_NE(printed.find("COLMAJOR"), std::string::npos) << printed;
  Descriptor again = parse_descriptor(printed);
  EXPECT_EQ(to_text(again), printed);
}

TEST(ValidateTest, ChildOrderMustMatchNestedBlocks) {
  EXPECT_THROW(parse_descriptor(with_layout(
                   "DATASET \"DS\" { DATA { DATASET ghost } DATASET real { "
                   "DATASPACE { LOOP I 1:2:1 { A } } DATA { f } } }")),
               ValidationError);
}

// ---------------------------------------------------------------------------
// Parse errors carry positions

TEST(ParseErrorTest, BadSectionLine) {
  try {
    parse_descriptor("[S]\nA int\n");  // missing '='
    FAIL();
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 2);
  }
}

TEST(ParseErrorTest, UnterminatedDatasetBlock) {
  EXPECT_THROW(parse_descriptor(with_layout("DATASET \"DS\" { DATASPACE {")),
               ParseError);
}

TEST(ParseErrorTest, GarbageInsideDataset) {
  EXPECT_THROW(
      parse_descriptor(with_layout("DATASET \"DS\" { WHATEVER { } }")),
      ParseError);
}

}  // namespace
}  // namespace adv::meta
