// Multi-client stress for the admission scheduler behind QueryServer: a
// 64-client closed loop with a mix of normal, client-cancelled, and
// tight-deadline queries against max_concurrent_queries = 4, asserting
// bounded concurrency, byte-identical results for the queries that ran,
// full outcome accounting, queue-full rejections with a retry-after hint,
// and no leaked threads after shutdown.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/tempdir.h"
#include "dataset/ipars.h"
#include "storm/net.h"

namespace adv::storm {
namespace {

using namespace std::chrono_literals;

// Per-row hold used to keep a query running long enough to observe it
// (0 = pass-through).  UdfFn is a plain function pointer, so the knob is a
// file-scope atomic.
std::atomic<int> g_hold_us{0};

double slow_pass(const double*, std::size_t) {
  int us = g_hold_us.load(std::memory_order_relaxed);
  if (us > 0) std::this_thread::sleep_for(std::chrono::microseconds(us));
  return 1.0;
}

void register_slow_pass() {
  static bool once = [] {
    FilteringService::register_filter("SLOWPASS", 1, slow_pass);
    return true;
  }();
  (void)once;
}

int thread_count() {
  std::ifstream f("/proc/self/status");
  std::string line;
  while (std::getline(f, line))
    if (line.rfind("Threads:", 0) == 0)
      return std::atoi(line.c_str() + 8);
  return -1;
}

struct StressFixture {
  TempDir tmp{"sched_stress"};
  dataset::IparsConfig cfg;
  dataset::GeneratedIpars gen;
  std::shared_ptr<codegen::DataServicePlan> plan;

  static dataset::IparsConfig make_cfg() {
    dataset::IparsConfig c;
    c.nodes = 2;
    c.rels = 2;
    c.timesteps = 8;
    c.grid_per_node = 16;
    c.pad_vars = 0;
    return c;
  }

  StressFixture()
      : cfg(make_cfg()),
        gen(dataset::generate_ipars(cfg, dataset::IparsLayout::kV,
                                    tmp.str())),
        plan(std::make_shared<codegen::DataServicePlan>(
            meta::parse_descriptor(gen.descriptor_text), gen.dataset_name,
            gen.root)) {}
};

TEST(SchedStressTest, SixtyFourClientClosedLoop) {
  StressFixture f;
  const char* sql = "SELECT * FROM IparsData WHERE SOIL > 0.25";

  // Sequential baseline the served results must be byte-identical to.
  expr::Table baseline;
  {
    StormCluster local(f.plan);
    baseline = local.execute(sql).merged();
  }
  ASSERT_GT(baseline.num_rows(), 0u);

  int threads_before = thread_count();
  ASSERT_GT(threads_before, 0);
  {
    sched::SchedulerOptions sopts;
    sopts.max_concurrent_queries = 4;
    sopts.max_queue_depth = 64;  // nothing in this loop gets rejected
    QueryServer server(f.plan, {}, 0, nullptr, sopts);

    constexpr int kClients = 64;
    std::atomic<int> ok{0}, mismatched{0}, cancelled{0}, deadline{0},
        failed{0};
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (int i = 0; i < kClients; ++i) {
      clients.emplace_back([&, i] {
        QueryClient client("127.0.0.1", server.port());
        QueryOptions qopts;
        CancelToken token;
        // Mix: every 4th client cancels up front, every 4th runs under a
        // deadline too tight to survive queueing, the rest are normal.
        if (i % 4 == 3) {
          token.cancel();
          qopts.cancel = &token;
        } else if (i % 4 == 2) {
          qopts.deadline_seconds = 0.002;
        }
        qopts.priority = static_cast<uint8_t>(i % 3);
        try {
          RemoteResult r = client.execute(sql, {}, qopts);
          if (r.merged().same_rows(baseline))
            ok.fetch_add(1);
          else
            mismatched.fetch_add(1);
        } catch (const CancelledError&) {
          cancelled.fetch_add(1);
        } catch (const QueryError& e) {
          std::string msg = e.what();
          if (msg.find("deadline") != std::string::npos)
            deadline.fetch_add(1);
          else if (msg.find("cancelled") != std::string::npos)
            cancelled.fetch_add(1);
          else
            failed.fetch_add(1);
        }
      });
    }
    for (auto& c : clients) c.join();

    // Every normal client got the exact sequential answer; cancel/deadline
    // clients either finished fast or ended with their own outcome — never
    // a wrong result or an unrelated failure.
    EXPECT_EQ(mismatched.load(), 0);
    EXPECT_EQ(failed.load(), 0);
    EXPECT_GE(ok.load(), kClients / 2);  // all 32 normals + fast others
    EXPECT_EQ(ok.load() + cancelled.load() + deadline.load(), kClients);

    sched::SchedulerMetrics m = server.scheduler_metrics();
    EXPECT_EQ(m.submitted, static_cast<uint64_t>(kClients));
    EXPECT_EQ(m.rejected, 0u);
    EXPECT_LE(m.peak_running, 4u);   // admission bound held throughout
    EXPECT_GE(m.peak_running, 2u);   // and was actually exercised
    EXPECT_EQ(m.running, 0u);
    EXPECT_EQ(m.queue_depth, 0u);
    // Full accounting: every non-rejected submission ended in exactly one
    // outcome bucket.
    EXPECT_EQ(m.completed + m.failed + m.cancelled + m.deadline_exceeded,
              static_cast<uint64_t>(kClients));
    EXPECT_EQ(m.completed, static_cast<uint64_t>(ok.load()));
    EXPECT_GT(m.queue_wait.count, 0u);
    EXPECT_GT(m.run_time.count, 0u);

    server.shutdown();
  }
  // Acceptor, connection, reader, and node threads are all gone.
  int threads_after = thread_count();
  for (int spin = 0; spin < 100 && threads_after > threads_before; ++spin) {
    std::this_thread::sleep_for(10ms);
    threads_after = thread_count();
  }
  EXPECT_LE(threads_after, threads_before);
}

TEST(SchedStressTest, QueueFullRejectionCarriesRetryAfter) {
  StressFixture f;
  register_slow_pass();
  g_hold_us.store(4000);

  sched::SchedulerOptions sopts;
  sopts.max_concurrent_queries = 1;
  sopts.max_queue_depth = 0;  // no waiting room: busy server rejects
  QueryServer server(f.plan, {}, 0, nullptr, sopts);

  // A 4 ms per-row UDF hold keeps the slot busy for several hundred
  // milliseconds — long enough for the rejection probe below to land
  // while the holder still occupies the only slot.
  std::thread holder([&] {
    QueryClient client("127.0.0.1", server.port());
    RemoteResult r = client.execute(
        "SELECT * FROM IparsData WHERE TIME <= 2 AND SLOWPASS(SOIL) > 0");
    EXPECT_GT(r.total_rows(), 0u);
  });
  // Wait until the holder actually occupies the slot.
  for (int spin = 0; spin < 500 && server.scheduler_metrics().running == 0;
       ++spin)
    std::this_thread::sleep_for(1ms);
  ASSERT_EQ(server.scheduler_metrics().running, 1u);

  QueryClient client("127.0.0.1", server.port());
  try {
    client.execute("SELECT REL FROM IparsData WHERE TIME = 1");
    FAIL() << "expected QueueFullError";
  } catch (const QueueFullError& e) {
    EXPECT_GT(e.retry_after_seconds, 0.0);
    EXPECT_NE(std::string(e.what()).find("full"), std::string::npos);
  }
  holder.join();
  g_hold_us.store(0);

  sched::SchedulerMetrics m = server.scheduler_metrics();
  EXPECT_EQ(m.rejected, 1u);
  EXPECT_EQ(m.completed, 1u);
  // The slot freed: the same client's retry now succeeds.
  EXPECT_GT(
      client.execute("SELECT REL FROM IparsData WHERE TIME = 1").total_rows(),
      0u);
}

TEST(SchedStressTest, PriorityAdmissionUnderLoad) {
  StressFixture f;
  register_slow_pass();
  g_hold_us.store(4000);

  sched::SchedulerOptions sopts;
  sopts.max_concurrent_queries = 1;
  sopts.max_queue_depth = 16;
  QueryServer server(f.plan, {}, 0, nullptr, sopts);

  // Occupy the slot for several hundred milliseconds, then queue a low-
  // and a high-priority query; the high one must be admitted first.
  std::thread holder([&] {
    QueryClient client("127.0.0.1", server.port());
    client.execute(
        "SELECT * FROM IparsData WHERE TIME <= 2 AND SLOWPASS(SOIL) > 0");
  });
  for (int spin = 0; spin < 500 && server.scheduler_metrics().running == 0;
       ++spin)
    std::this_thread::sleep_for(1ms);

  std::atomic<uint64_t> low_admitted_id{0}, high_admitted_id{0};
  std::atomic<int> admit_seq{0};
  std::atomic<int> low_rank{0}, high_rank{0};
  auto run = [&](uint8_t priority, std::atomic<uint64_t>& id_out,
                 std::atomic<int>& rank_out) {
    QueryClient client("127.0.0.1", server.port());
    QueryOptions qopts;
    qopts.priority = priority;
    qopts.on_admitted = [&](uint64_t id, double) {
      id_out.store(id);
      rank_out.store(admit_seq.fetch_add(1) + 1);
    };
    // The probes are slow (SLOWPASS) too: on_admitted fires when the
    // *client* reads its kAdmitted frame, so the gap between the two
    // admissions must dwarf client-thread scheduling jitter on a loaded
    // host — a fast probe makes the rank recording racy.
    client.execute("SELECT REL FROM IparsData WHERE TIME = 1 AND SLOWPASS(SOIL) > 0",
                   {}, qopts);
  };
  std::thread low([&] { run(0, low_admitted_id, low_rank); });
  // Make sure the low-priority query is queued before the high one shows
  // up, so ordering is decided by priority, not arrival.
  for (int spin = 0; spin < 500 && server.scheduler_metrics().queue_depth == 0;
       ++spin)
    std::this_thread::sleep_for(1ms);
  std::thread high([&] { run(2, high_admitted_id, high_rank); });

  holder.join();
  low.join();
  high.join();
  g_hold_us.store(0);

  ASSERT_GT(low_admitted_id.load(), 0u);
  ASSERT_GT(high_admitted_id.load(), 0u);
  EXPECT_LT(high_rank.load(), low_rank.load());  // high admitted first
}

}  // namespace
}  // namespace adv::storm
