// Multi-process chaos harness for the distribution layer.
//
// Spawns real adv_node daemons (one OS process per shard replica, found
// via the ADV_NODE_BIN environment variable that CMake injects), drives
// them through a DistCoordinator, and then does its best to break them:
// kill -9 mid-stream, stalled-but-alive stragglers, fault campaigns armed
// inside a single daemon.  The contract under test is the one
// docs/DISTRIBUTION.md states: with a replica available the result is
// byte-identical to the in-process cluster's (exactly-once rows across
// failover); with no replica the query ends in a typed error or a typed
// partial-results casualty — never a hang, never a duplicated or dropped
// row, never a coordinator crash.
//
// The in-process StormCluster is the differential reference throughout,
// and the row comparison is the dq harness's bit-exact multiset equality.
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/io.h"
#include "common/tempdir.h"
#include "dataset/ipars.h"
#include "dq/dq_run.h"
#include "storm/cluster.h"
#include "storm/dist.h"
#include "storm/node_daemon.h"

namespace adv::storm {
namespace {

const char* kSql = "SELECT * FROM IparsData WHERE SOIL > 0.1";

struct SpawnedDaemon {
  pid_t pid = -1;
  int port = 0;
};

struct ChaosFixture {
  TempDir tmp{"chaos"};
  dataset::IparsConfig cfg;
  dataset::GeneratedIpars gen;
  std::string desc_path;
  std::shared_ptr<codegen::DataServicePlan> plan;
  std::vector<pid_t> pids;

  static dataset::IparsConfig make_cfg() {
    dataset::IparsConfig c;
    c.nodes = 2;
    c.rels = 2;
    c.timesteps = 8;  // enough AFCs per node for several commit points
    c.grid_per_node = 16;
    c.pad_vars = 0;
    return c;
  }

  ChaosFixture()
      : cfg(make_cfg()),
        gen(dataset::generate_ipars(cfg, dataset::IparsLayout::kV,
                                    tmp.str())),
        desc_path(tmp.str() + "/descriptor.adv"),
        plan(std::make_shared<codegen::DataServicePlan>(
            meta::parse_descriptor(gen.descriptor_text), gen.dataset_name,
            gen.root)) {
    write_text_file(desc_path, gen.descriptor_text);
  }

  ~ChaosFixture() {
    // Belt-and-braces reaping: kill anything still alive (already-dead
    // pids fail harmlessly) and wait every child so nothing outlives the
    // test — the daemon's own PR_SET_PDEATHSIG covers the crashed-parent
    // case.
    for (pid_t p : pids) {
      ::kill(p, SIGKILL);
      int status = 0;
      ::waitpid(p, &status, 0);
    }
  }

  static const char* node_bin() { return std::getenv("ADV_NODE_BIN"); }

  // Fork+exec one adv_node and parse its READY line for the ephemeral
  // port.  `env` entries are set only in the child, which is how a fault
  // campaign is aimed at exactly one replica.
  SpawnedDaemon spawn(
      int node, const std::vector<std::string>& extra_args = {},
      const std::vector<std::pair<std::string, std::string>>& env = {}) {
    SpawnedDaemon d;
    const char* bin = node_bin();
    if (!bin) return d;
    int pfd[2];
    if (::pipe(pfd) != 0) return d;
    pid_t pid = ::fork();
    if (pid == 0) {
      ::dup2(pfd[1], 1);
      ::close(pfd[0]);
      ::close(pfd[1]);
      for (const auto& kv : env)
        ::setenv(kv.first.c_str(), kv.second.c_str(), 1);
      std::vector<std::string> args = {bin,
                                       desc_path,
                                       gen.dataset_name,
                                       "--root",
                                       gen.root,
                                       "--node",
                                       std::to_string(node),
                                       "--heartbeat-ms",
                                       "20"};
      for (const auto& e : extra_args) args.push_back(e);
      std::vector<char*> argv;
      argv.reserve(args.size() + 1);
      for (auto& a : args) argv.push_back(const_cast<char*>(a.c_str()));
      argv.push_back(nullptr);
      ::execv(bin, argv.data());
      ::_exit(127);
    }
    ::close(pfd[1]);
    std::string line;
    char ch;
    while (::read(pfd[0], &ch, 1) == 1 && ch != '\n') line.push_back(ch);
    ::close(pfd[0]);
    pids.push_back(pid);
    d.pid = pid;
    if (std::sscanf(line.c_str(), "READY %d", &d.port) != 1) d.port = 0;
    return d;
  }

  QueryResult reference(const std::string& sql,
                        const PartitionSpec& part = {}) {
    StormCluster cluster(plan, {});
    return cluster.execute(sql, part);
  }

  DistOptions base_opts() {
    DistOptions o;
    o.connect_timeout_seconds = 3.0;
    o.liveness_timeout_seconds = 3.0;
    o.heartbeat_interval_seconds = 0.02;
    o.checkpoint_afcs = 1;
    return o;
  }
};

#define REQUIRE_DAEMON_BIN()                                             \
  if (!ChaosFixture::node_bin())                                         \
  GTEST_SKIP() << "ADV_NODE_BIN not set; multi-process tests need the "  \
                  "adv_node binary"

// ---------------------------------------------------------------------
// In-process daemons: the same scatter/gather path without fork, so this
// part runs everywhere (including tsan builds) and pins down the protocol
// before the chaos starts.

TEST(DistInProcessTest, ScatterGatherMatchesCluster) {
  ChaosFixture f;
  NodeDaemonOptions n0, n1;
  n0.node_id = 0;
  n1.node_id = 1;
  NodeDaemon d0(f.plan, n0), d1(f.plan, n1);
  ASSERT_GT(d0.port(), 0);
  ASSERT_GT(d1.port(), 0);

  DistOptions opts = f.base_opts();
  opts.partition.policy = PartitionSpec::Policy::kRoundRobin;
  opts.partition.num_consumers = 3;
  DistCoordinator coord({{0, {{"127.0.0.1", d0.port()}}},
                         {1, {{"127.0.0.1", d1.port()}}}},
                        opts);

  QueryResult want = f.reference(kSql, opts.partition);
  DistResult got = coord.run(kSql);
  EXPECT_TRUE(got.casualties.empty());
  ASSERT_EQ(got.partitions.size(), 3u);
  ASSERT_EQ(want.partitions.size(), 3u);
  // Partition destinations are scan-position based, so each consumer's
  // rows must match the in-process cluster's exactly — not just the union.
  for (std::size_t c = 0; c < 3; ++c)
    EXPECT_TRUE(dq::rows_equal_exact(got.partitions[c], want.partitions[c]))
        << "partition " << c;
  EXPECT_EQ(got.node_stats.size(), 2u);
  EXPECT_GT(got.commits, 0u);
  EXPECT_EQ(got.failovers, 0u);

  // Daemons serve repeat queries (fresh connection per query).
  DistResult again = coord.run(kSql);
  EXPECT_TRUE(dq::rows_equal_exact(again.merged(), want.merged()));
  EXPECT_EQ(d0.queries_served(), 2u);
  EXPECT_EQ(d1.queries_served(), 2u);
}

TEST(DistInProcessTest, AggregatePushdownMatchesCluster) {
  ChaosFixture f;
  NodeDaemonOptions n0, n1;
  n0.node_id = 0;
  n1.node_id = 1;
  NodeDaemon d0(f.plan, n0), d1(f.plan, n1);
  ASSERT_GT(d0.port(), 0);
  ASSERT_GT(d1.port(), 0);

  DistOptions opts = f.base_opts();
  opts.agg_checkpoint_afcs = 2;  // several partial-aggregate deltas per node
  DistCoordinator coord({{0, {{"127.0.0.1", d0.port()}}},
                         {1, {{"127.0.0.1", d1.port()}}}},
                        opts);

  // The determinism contract spans backends: the dist gather merges the
  // same exact aggregate state the in-process cluster does, so results are
  // bit-identical — including SUM/AVG (docs/AGGREGATION.md).
  const char* agg_sql =
      "SELECT TIME, COUNT(*), SUM(SOIL), AVG(SGAS) FROM IparsData "
      "WHERE SOIL > 0.1 GROUP BY TIME";
  QueryResult want = f.reference(agg_sql);
  DistResult r = coord.run(agg_sql);
  EXPECT_TRUE(r.casualties.empty());
  EXPECT_TRUE(dq::rows_equal_exact(r.merged(), want.merged()));
  EXPECT_GT(r.commits, 0u);
  uint64_t groups = 0, agg_bytes = 0, rows_bytes = 0;
  for (const auto& ns : r.node_stats) {
    groups += ns.groups_emitted;
    agg_bytes += ns.agg_bytes_shipped;
    rows_bytes += ns.bytes_sent;
  }
  EXPECT_GT(groups, 0u);       // stats tail survived the wire round-trip
  EXPECT_EQ(agg_bytes, rows_bytes);  // only aggregate state was shipped

  // Grouped top-k: the LIMIT is applied only at the final merge.
  const char* topk_sql =
      "SELECT TIME, SUM(SOIL) FROM IparsData GROUP BY TIME "
      "ORDER BY SUM(SOIL) DESC LIMIT 3";
  EXPECT_TRUE(dq::rows_equal_exact(coord.run(topk_sql).merged(),
                                   f.reference(topk_sql).merged()));
}

TEST(DistInProcessTest, MisconfiguredShardMapFailsTyped) {
  ChaosFixture f;
  NodeDaemonOptions n1;
  n1.node_id = 1;
  NodeDaemon d1(f.plan, n1);

  // The shard map claims this daemon serves node 0; the daemon's
  // kNodeHello says otherwise.  kQuery is deterministic, so no retry
  // storm — one attempt, one typed casualty.
  DistOptions opts = f.base_opts();
  opts.allow_partial_results = true;
  DistCoordinator coord({{0, {{"127.0.0.1", d1.port()}}}}, opts);
  DistResult r = coord.run(kSql);
  ASSERT_EQ(r.casualties.size(), 1u);
  EXPECT_EQ(r.casualties[0].node_id, 0);
  EXPECT_EQ(r.casualties[0].kind, ErrorKind::kQuery);
  EXPECT_EQ(r.failovers, 0u);

  DistOptions strict = f.base_opts();
  DistCoordinator coord2({{0, {{"127.0.0.1", d1.port()}}}}, strict);
  EXPECT_THROW(coord2.run(kSql), QueryError);
}

TEST(DistInProcessTest, UnreachableShardBecomesIoCasualty) {
  ChaosFixture f;
  NodeDaemonOptions n1;
  n1.node_id = 1;
  NodeDaemon d1(f.plan, n1);

  DistOptions opts = f.base_opts();
  opts.allow_partial_results = true;
  opts.connect_timeout_seconds = 0.5;
  // Port 1 on loopback: nothing listens there.
  DistCoordinator coord({{0, {{"127.0.0.1", 1}}},
                         {1, {{"127.0.0.1", d1.port()}}}},
                        opts);
  QueryResult want = f.reference(kSql);
  DistResult r = coord.run(kSql);
  ASSERT_EQ(r.casualties.size(), 1u);
  EXPECT_EQ(r.casualties[0].kind, ErrorKind::kIo);
  EXPECT_EQ(r.failed_nodes(), std::vector<int>{0});
  // The surviving node's rows still arrive, and only its rows.
  EXPECT_TRUE(dq::rows_subset(r.merged(), want.merged()));
  EXPECT_GT(r.total_rows(), 0u);
  EXPECT_LT(r.total_rows(), want.total_rows());
}

// ---------------------------------------------------------------------
// Real processes from here on.

TEST(DistChaosTest, MultiProcessSmoke) {
  REQUIRE_DAEMON_BIN();
  ChaosFixture f;
  SpawnedDaemon d0 = f.spawn(0), d1 = f.spawn(1);
  ASSERT_GT(d0.port, 0);
  ASSERT_GT(d1.port, 0);

  DistOptions opts = f.base_opts();
  DistCoordinator coord({{0, {{"127.0.0.1", d0.port}}},
                         {1, {{"127.0.0.1", d1.port}}}},
                        opts);
  DistResult r = coord.run(kSql);
  EXPECT_TRUE(r.casualties.empty());
  EXPECT_TRUE(dq::rows_equal_exact(r.merged(), f.reference(kSql).merged()));
  EXPECT_EQ(r.node_stats.size(), 2u);
}

TEST(DistChaosTest, KillNinePrimaryFailsOverByteIdentical) {
  REQUIRE_DAEMON_BIN();
  ChaosFixture f;
  // Node 0 runs two replicas; node 1 one.  The primary of node 0 is shot
  // with SIGKILL mid-stream, triggered deterministically off the
  // coordinator's own commit hook.
  SpawnedDaemon primary = f.spawn(0), replica = f.spawn(0);
  SpawnedDaemon d1 = f.spawn(1);
  ASSERT_GT(primary.port, 0);
  ASSERT_GT(replica.port, 0);
  ASSERT_GT(d1.port, 0);

  std::atomic<bool> killed{false};
  DistOptions opts = f.base_opts();
  opts.on_commit = [&](int node, uint64_t committed) {
    if (node == 0 && committed >= 2 && !killed.exchange(true))
      ::kill(primary.pid, SIGKILL);
  };
  DistCoordinator coord(
      {{0,
        {{"127.0.0.1", primary.port}, {"127.0.0.1", replica.port}}},
       {1, {{"127.0.0.1", d1.port}}}},
      opts);

  QueryResult want = f.reference(kSql);
  DistResult r = coord.run(kSql);
  EXPECT_TRUE(killed.load());
  EXPECT_TRUE(r.casualties.empty());
  EXPECT_GE(r.failovers, 1u);
  // The heart of the failover contract: committed prefix + replica resume
  // re-creates the exact row multiset — nothing duplicated at the commit
  // boundary, nothing dropped from the staged-then-discarded tail.
  EXPECT_TRUE(dq::rows_equal_exact(r.merged(), want.merged()));
}

TEST(DistChaosTest, KillNineAggregateFailsOverNoDoubleCount) {
  REQUIRE_DAEMON_BIN();
  ChaosFixture f;
  // Aggregation pushdown under process death: partial-aggregate deltas
  // are committed per AFC, the primary is shot after two commits, and the
  // replica resumes at the committed prefix.  Any double-counted (or
  // dropped) window shows up immediately as a COUNT/SUM mismatch against
  // the in-process reference — the comparison is bit-exact.
  SpawnedDaemon primary = f.spawn(0), replica = f.spawn(0);
  SpawnedDaemon d1 = f.spawn(1);
  ASSERT_GT(primary.port, 0);
  ASSERT_GT(replica.port, 0);
  ASSERT_GT(d1.port, 0);

  std::atomic<bool> killed{false};
  DistOptions opts = f.base_opts();
  opts.agg_checkpoint_afcs = 1;  // a commit point at every AFC
  opts.on_commit = [&](int node, uint64_t committed) {
    if (node == 0 && committed >= 2 && !killed.exchange(true))
      ::kill(primary.pid, SIGKILL);
  };
  DistCoordinator coord(
      {{0,
        {{"127.0.0.1", primary.port}, {"127.0.0.1", replica.port}}},
       {1, {{"127.0.0.1", d1.port}}}},
      opts);

  const char* sql =
      "SELECT TIME, COUNT(*), SUM(SOIL), MIN(SGAS), MAX(SGAS) "
      "FROM IparsData WHERE SOIL > 0.1 GROUP BY TIME";
  QueryResult want = f.reference(sql);
  DistResult r = coord.run(sql);
  EXPECT_TRUE(killed.load());
  EXPECT_TRUE(r.casualties.empty());
  EXPECT_GE(r.failovers, 1u);
  EXPECT_TRUE(dq::rows_equal_exact(r.merged(), want.merged()));
}

TEST(DistChaosTest, KillNineWithoutReplicaIsTypedPartial) {
  REQUIRE_DAEMON_BIN();
  ChaosFixture f;
  SpawnedDaemon d0 = f.spawn(0), d1 = f.spawn(1);
  ASSERT_GT(d0.port, 0);
  ASSERT_GT(d1.port, 0);

  std::atomic<bool> killed{false};
  DistOptions opts = f.base_opts();
  opts.allow_partial_results = true;
  opts.on_commit = [&](int node, uint64_t committed) {
    if (node == 0 && committed >= 1 && !killed.exchange(true))
      ::kill(d0.pid, SIGKILL);
  };
  DistCoordinator coord({{0, {{"127.0.0.1", d0.port}}},
                         {1, {{"127.0.0.1", d1.port}}}},
                        opts);

  QueryResult want = f.reference(kSql);
  DistResult r = coord.run(kSql);
  EXPECT_TRUE(killed.load());
  ASSERT_EQ(r.casualties.size(), 1u);
  EXPECT_EQ(r.casualties[0].node_id, 0);
  EXPECT_EQ(r.casualties[0].kind, ErrorKind::kIo);
  EXPECT_GE(r.casualties[0].attempts, 2u);  // reconnect was attempted
  EXPECT_EQ(r.failed_nodes(), std::vector<int>{0});
  EXPECT_TRUE(dq::rows_subset(r.merged(), want.merged()));
  EXPECT_LT(r.total_rows(), want.total_rows());

  // Same kill without partial-results opt-in: a typed throw, not a hang
  // and not a truncated "success".
  SpawnedDaemon d0b = f.spawn(0);
  ASSERT_GT(d0b.port, 0);
  std::atomic<bool> killed2{false};
  DistOptions strict = f.base_opts();
  strict.on_commit = [&](int node, uint64_t committed) {
    if (node == 0 && committed >= 1 && !killed2.exchange(true))
      ::kill(d0b.pid, SIGKILL);
  };
  DistCoordinator coord2({{0, {{"127.0.0.1", d0b.port}}},
                          {1, {{"127.0.0.1", d1.port}}}},
                         strict);
  EXPECT_THROW(coord2.run(kSql), IoError);
  EXPECT_TRUE(killed2.load());
}

TEST(DistChaosTest, StragglerReissuesOnReplica) {
  REQUIRE_DAEMON_BIN();
  ChaosFixture f;
  // The primary freezes (alive, heartbeating, zero progress) after two
  // AFCs; the coordinator must cut it on the straggler clock — well
  // before any liveness/deadline machinery — and finish on the replica.
  SpawnedDaemon primary =
      f.spawn(0, {"--stall-after", "2", "--stall-seconds", "60"});
  SpawnedDaemon replica = f.spawn(0);
  SpawnedDaemon d1 = f.spawn(1);
  ASSERT_GT(primary.port, 0);
  ASSERT_GT(replica.port, 0);
  ASSERT_GT(d1.port, 0);

  DistOptions opts = f.base_opts();
  opts.straggler_timeout_seconds = 0.3;
  DistCoordinator coord(
      {{0,
        {{"127.0.0.1", primary.port}, {"127.0.0.1", replica.port}}},
       {1, {{"127.0.0.1", d1.port}}}},
      opts);

  QueryResult want = f.reference(kSql);
  DistResult r = coord.run(kSql);
  EXPECT_TRUE(r.casualties.empty());
  EXPECT_GE(r.straggler_reissues, 1u);
  EXPECT_TRUE(dq::rows_equal_exact(r.merged(), want.merged()));
}

TEST(DistChaosTest, FaultCampaignArmsInOneDaemonOnly) {
  REQUIRE_DAEMON_BIN();
  ChaosFixture f;
  // A node-death campaign armed in the primary's environment: every query
  // against it dies at start with a typed retryable error, while the
  // replica (clean environment) is untouched.  Exercises in-daemon faultz
  // arming plus the typed-error failover path — no process death needed.
  SpawnedDaemon primary = f.spawn(
      0, {}, {{"ADV_FAULT_SEED", "7"}, {"ADV_FAULT_SPEC", "node.run=1"}});
  SpawnedDaemon replica = f.spawn(0);
  SpawnedDaemon d1 = f.spawn(1);
  ASSERT_GT(primary.port, 0);
  ASSERT_GT(replica.port, 0);
  ASSERT_GT(d1.port, 0);

  DistOptions opts = f.base_opts();
  DistCoordinator coord(
      {{0,
        {{"127.0.0.1", primary.port}, {"127.0.0.1", replica.port}}},
       {1, {{"127.0.0.1", d1.port}}}},
      opts);

  QueryResult want = f.reference(kSql);
  DistResult r = coord.run(kSql);
  EXPECT_TRUE(r.casualties.empty());
  EXPECT_GE(r.failovers, 1u);
  EXPECT_TRUE(dq::rows_equal_exact(r.merged(), want.merged()));

  // The armed daemon is still alive and still failing typed — repeatable.
  DistResult again = coord.run(kSql);
  EXPECT_TRUE(again.casualties.empty());
  EXPECT_GE(again.failovers, 1u);
  EXPECT_TRUE(dq::rows_equal_exact(again.merged(), want.merged()));
}

TEST(DistChaosTest, SeededKillCampaignUnderPartition) {
  REQUIRE_DAEMON_BIN();
  ChaosFixture f;
  // Bounded fixed-seed chaos sweep: kill the node-0 primary at a
  // different commit point each round, with a partitioned gather, and
  // demand per-partition byte-identity every time.  The commit points are
  // the campaign's "seed": deterministic trigger placement, not wall
  // clock.
  SpawnedDaemon d1 = f.spawn(1);
  ASSERT_GT(d1.port, 0);

  DistOptions base = f.base_opts();
  base.partition.policy = PartitionSpec::Policy::kRoundRobin;
  base.partition.num_consumers = 2;
  QueryResult want = f.reference(kSql, base.partition);

  for (uint64_t kill_at : {1u, 3u, 5u}) {
    SpawnedDaemon primary = f.spawn(0);
    SpawnedDaemon replica = f.spawn(0);
    ASSERT_GT(primary.port, 0);
    ASSERT_GT(replica.port, 0);
    std::atomic<bool> killed{false};
    DistOptions opts = base;
    opts.on_commit = [&](int node, uint64_t committed) {
      if (node == 0 && committed >= kill_at && !killed.exchange(true))
        ::kill(primary.pid, SIGKILL);
    };
    DistCoordinator coord(
        {{0,
          {{"127.0.0.1", primary.port}, {"127.0.0.1", replica.port}}},
         {1, {{"127.0.0.1", d1.port}}}},
        opts);
    DistResult r = coord.run(kSql);
    EXPECT_TRUE(r.casualties.empty()) << "kill_at=" << kill_at;
    for (std::size_t c = 0; c < want.partitions.size(); ++c)
      EXPECT_TRUE(
          dq::rows_equal_exact(r.partitions[c], want.partitions[c]))
          << "kill_at=" << kill_at << " partition " << c;
    // The replica stays usable for the next round; only the primary died.
    ::kill(replica.pid, SIGKILL);
  }
}

}  // namespace
}  // namespace adv::storm
