// End-to-end correctness of the generated data services: for every IPARS
// layout and a battery of queries, descriptor -> DataServicePlan ->
// index/extract must produce exactly the rows the brute-force oracle
// produces.  Plus Titan, file verification, and failure injection.
#include <gtest/gtest.h>

#include <filesystem>

#include "codegen/plan.h"
#include "common/tempdir.h"
#include "dataset/ipars.h"
#include "dataset/titan.h"

namespace adv::codegen {
namespace {

dataset::IparsConfig small_cfg() {
  dataset::IparsConfig cfg;
  cfg.nodes = 2;
  cfg.rels = 3;
  cfg.timesteps = 12;
  cfg.grid_per_node = 20;
  cfg.pad_vars = 2;
  return cfg;
}

// The query battery: exercises full scans, indexed subsetting, value
// filters, UDF filters, IN lists, projections, and empty results.
const char* kIparsQueries[] = {
    "SELECT * FROM IparsData",
    "SELECT * FROM IparsData WHERE TIME > 3 AND TIME < 8",
    "SELECT * FROM IparsData WHERE TIME > 3 AND TIME < 8 AND SOIL > 0.7",
    "SELECT * FROM IparsData WHERE SPEED(OILVX, OILVY, OILVZ) < 10.0",
    "SELECT * FROM IparsData WHERE REL IN (0, 2) AND TIME <= 2",
    "SELECT REL, TIME, SOIL FROM IparsData WHERE SOIL > 0.9",
    "SELECT X, Y, Z FROM IparsData WHERE REL = 1 AND TIME = 5",
    "SELECT * FROM IparsData WHERE TIME = 100",  // out of range -> empty
    "SELECT TIME, SGAS FROM IparsData WHERE REL = 0 AND SGAS < 0.25 AND "
    "TIME IN (2, 4, 6)",
    "SELECT * FROM IparsData WHERE X >= 2 AND X <= 5 AND Y < 3",
};

struct LayoutCase {
  dataset::IparsLayout layout;
  const char* query;
};

class IparsEndToEnd : public ::testing::TestWithParam<LayoutCase> {};

TEST_P(IparsEndToEnd, MatchesOracle) {
  const LayoutCase& lc = GetParam();
  dataset::IparsConfig cfg = small_cfg();
  TempDir tmp("e2e");
  dataset::GeneratedIpars gen =
      dataset::generate_ipars(cfg, lc.layout, tmp.str());

  DataServicePlan plan = DataServicePlan::from_text(
      gen.descriptor_text, gen.dataset_name, gen.root);
  EXPECT_TRUE(plan.verify_files().empty());

  expr::BoundQuery q = plan.bind(lc.query);
  ExtractStats stats;
  expr::Table got = plan.execute(q, {}, &stats);
  expr::Table want = dataset::ipars_oracle(cfg, q);

  EXPECT_EQ(got.num_rows(), want.num_rows()) << lc.query;
  EXPECT_TRUE(got.same_rows(want)) << "layout "
                                   << dataset::to_string(lc.layout) << ": "
                                   << lc.query;
  EXPECT_EQ(stats.rows_matched, got.num_rows());
  EXPECT_GE(stats.rows_scanned, stats.rows_matched);
}

std::vector<LayoutCase> all_cases() {
  std::vector<LayoutCase> cases;
  for (auto l : dataset::all_ipars_layouts())
    for (const char* q : kIparsQueries) cases.push_back({l, q});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, IparsEndToEnd, ::testing::ValuesIn(all_cases()),
    [](const ::testing::TestParamInfo<LayoutCase>& info) {
      return std::string("L") + dataset::to_string(info.param.layout) + "_Q" +
             std::to_string(info.index % (sizeof(kIparsQueries) /
                                          sizeof(kIparsQueries[0])));
    });

// ---------------------------------------------------------------------------
// Cross-layout agreement: every layout of the same logical data returns the
// same rows for the same query.

TEST(CrossLayout, AllLayoutsAgree) {
  dataset::IparsConfig cfg = small_cfg();
  const char* query =
      "SELECT * FROM IparsData WHERE TIME >= 2 AND TIME <= 9 AND SGAS < 0.5";
  TempDir tmp("xlay");
  expr::Table reference;
  bool first = true;
  for (auto layout : dataset::all_ipars_layouts()) {
    std::string sub = tmp.subdir(dataset::to_string(layout));
    auto gen = dataset::generate_ipars(cfg, layout, sub);
    DataServicePlan plan = DataServicePlan::from_text(
        gen.descriptor_text, gen.dataset_name, gen.root);
    expr::Table t = plan.execute(query);
    if (first) {
      reference = t;
      first = false;
      EXPECT_GT(t.num_rows(), 0u);
    } else {
      EXPECT_TRUE(t.same_rows(reference))
          << "layout " << dataset::to_string(layout);
    }
  }
}

// ---------------------------------------------------------------------------
// Titan

TEST(TitanEndToEnd, QueriesMatchOracle) {
  dataset::TitanConfig cfg;
  cfg.nodes = 2;
  cfg.cells_x = 4;
  cfg.cells_y = 4;
  cfg.cells_z = 2;
  cfg.points_per_chunk = 64;
  TempDir tmp("titan");
  auto gen = dataset::generate_titan(cfg, tmp.str());
  DataServicePlan plan = DataServicePlan::from_text(
      gen.descriptor_text, gen.dataset_name, gen.root);
  EXPECT_TRUE(plan.verify_files().empty());

  for (const char* query : {
           "SELECT * FROM TitanData",
           "SELECT * FROM TitanData WHERE X >= 0 AND X <= 10000 AND Y >= 0 "
           "AND Y <= 10000 AND Z >= 0 AND Z <= 100",
           "SELECT * FROM TitanData WHERE DISTANCE(X, Y, Z) < 9000",
           "SELECT * FROM TitanData WHERE S1 < 0.01",
           "SELECT X, Y, S1 FROM TitanData WHERE S1 < 0.5",
       }) {
    expr::BoundQuery q = plan.bind(query);
    expr::Table got = plan.execute(q);
    expr::Table want = dataset::titan_oracle(cfg, q);
    EXPECT_TRUE(got.same_rows(want)) << query;
  }
}

// ---------------------------------------------------------------------------
// API errors and failure injection

TEST(PlanApi, WrongTableNameRejected) {
  dataset::IparsConfig cfg = small_cfg();
  TempDir tmp("api");
  auto gen = dataset::generate_ipars(cfg, dataset::IparsLayout::kI, tmp.str());
  DataServicePlan plan = DataServicePlan::from_text(
      gen.descriptor_text, gen.dataset_name, gen.root);
  EXPECT_THROW(plan.execute("SELECT * FROM SomethingElse"), QueryError);
  // Both the dataset name and the schema name are accepted.
  EXPECT_NO_THROW(plan.bind("SELECT * FROM IparsData WHERE TIME = 1"));
  EXPECT_NO_THROW(plan.bind("SELECT * FROM IPARS WHERE TIME = 1"));
}

TEST(PlanApi, VerifyFilesDetectsTruncationAndLoss) {
  dataset::IparsConfig cfg = small_cfg();
  TempDir tmp("verify");
  auto gen = dataset::generate_ipars(cfg, dataset::IparsLayout::kV, tmp.str());
  DataServicePlan plan = DataServicePlan::from_text(
      gen.descriptor_text, gen.dataset_name, gen.root);
  ASSERT_TRUE(plan.verify_files().empty());

  // Truncate one file.
  std::string victim = plan.model().files()[1].full_path;
  std::filesystem::resize_file(victim, 10);
  auto problems = plan.verify_files();
  ASSERT_EQ(problems.size(), 1u);
  EXPECT_NE(problems[0].find("size mismatch"), std::string::npos);

  // Remove it entirely.
  std::filesystem::remove(victim);
  problems = plan.verify_files();
  ASSERT_EQ(problems.size(), 1u);
  EXPECT_NE(problems[0].find("missing file"), std::string::npos);
}

TEST(PlanApi, TruncatedFileFailsExtractionLoudly) {
  dataset::IparsConfig cfg = small_cfg();
  TempDir tmp("trunc");
  auto gen = dataset::generate_ipars(cfg, dataset::IparsLayout::kI, tmp.str());
  DataServicePlan plan = DataServicePlan::from_text(
      gen.descriptor_text, gen.dataset_name, gen.root);
  std::string victim = plan.model().files()[0].full_path;
  std::filesystem::resize_file(victim, 16);
  EXPECT_THROW(plan.execute("SELECT * FROM IparsData"), IoError);
}

TEST(PlanApi, MissingRootDirectory) {
  dataset::IparsConfig cfg = small_cfg();
  std::string text =
      dataset::ipars_descriptor_text(cfg, dataset::IparsLayout::kI);
  DataServicePlan plan =
      DataServicePlan::from_text(text, "IparsData", "/nonexistent/root");
  EXPECT_FALSE(plan.verify_files().empty());
  EXPECT_THROW(plan.execute("SELECT * FROM IparsData"), IoError);
}

// ---------------------------------------------------------------------------
// Extractor internals

TEST(ExtractorTest, TinyBatchSizeStreamsCorrectly) {
  // Force multi-batch streaming with a pathologically small batch buffer.
  dataset::IparsConfig cfg = small_cfg();
  TempDir tmp("batch");
  auto gen = dataset::generate_ipars(cfg, dataset::IparsLayout::kII, tmp.str());
  DataServicePlan plan = DataServicePlan::from_text(
      gen.descriptor_text, gen.dataset_name, gen.root);
  expr::BoundQuery q = plan.bind("SELECT * FROM IparsData WHERE TIME <= 3");

  afc::PlanResult pr = plan.index_fn(q);
  expr::Table out(q.result_columns());
  Extractor tiny(8);  // 8-byte batches: one row at a time
  std::vector<GroupBinding> bindings;
  for (const auto& g : pr.groups)
    bindings.push_back(bind_group(g, q, plan.schema()));
  for (const auto& a : pr.afcs)
    tiny.extract(pr.groups[a.group], a, bindings[a.group], q, out);

  expr::Table want = dataset::ipars_oracle(cfg, q);
  EXPECT_TRUE(out.same_rows(want));
}

TEST(ExtractorTest, ClearCacheInvalidatesRewrittenFiles) {
  // The process-wide FileCache pins open handles (and mmaps), so replacing
  // a data file on disk is invisible to a live extractor until
  // clear_cache() drops both the extractor's pinned handles and the shared
  // cache.  Replace-via-rename swaps the inode, which makes the staleness
  // deterministic: the old handle keeps serving the old bytes.
  dataset::IparsConfig cfg = small_cfg();
  TempDir tmp("inval");
  auto gen = dataset::generate_ipars(cfg, dataset::IparsLayout::kL0, tmp.str());
  DataServicePlan plan = DataServicePlan::from_text(
      gen.descriptor_text, gen.dataset_name, gen.root);
  expr::BoundQuery q = plan.bind("SELECT * FROM IparsData");
  afc::PlanResult pr = plan.index_fn(q);
  std::vector<GroupBinding> bindings;
  for (const auto& g : pr.groups)
    bindings.push_back(bind_group(g, q, plan.schema()));

  Extractor ex;
  auto run = [&] {
    expr::Table out(q.result_columns());
    for (const auto& a : pr.afcs)
      ex.extract(pr.groups[a.group], a, bindings[a.group], q, out);
    return out;
  };
  expr::Table before = run();

  // Rewrite one data file in place (same size, zeroed payload) through a
  // temp file + rename so the old inode survives inside cached handles.
  const std::string victim = plan.model().files().front().full_path;
  std::string blank(std::filesystem::file_size(victim), '\0');
  write_text_file(victim + ".tmp", blank);
  std::filesystem::rename(victim + ".tmp", victim);

  expr::Table stale = run();
  EXPECT_TRUE(stale.same_rows(before));  // cached handle: old bytes

  ex.clear_cache();
  EXPECT_EQ(FileCache::instance().size(), 0u);
  expr::Table fresh = run();
  EXPECT_EQ(fresh.num_rows(), before.num_rows());
  EXPECT_FALSE(fresh.same_rows(before));  // zeroed file now visible
}

TEST(ExtractorTest, StatsCountBytes) {
  dataset::IparsConfig cfg = small_cfg();
  TempDir tmp("stats");
  auto gen = dataset::generate_ipars(cfg, dataset::IparsLayout::kI, tmp.str());
  DataServicePlan plan = DataServicePlan::from_text(
      gen.descriptor_text, gen.dataset_name, gen.root);
  expr::BoundQuery q = plan.bind("SELECT * FROM IparsData");
  afc::PlanResult pr = plan.index_fn(q);
  ExtractStats stats;
  plan.execute(q, {}, &stats);
  EXPECT_EQ(stats.bytes_read, pr.bytes_to_read());
  EXPECT_EQ(stats.rows_scanned, cfg.total_rows());
}

}  // namespace
}  // namespace adv::codegen
