// The hand-written baselines must agree exactly with the compiler-generated
// data services (this is what makes the Figs. 9-11 comparisons apples to
// apples).
#include <gtest/gtest.h>

#include "codegen/plan.h"
#include "common/tempdir.h"
#include "dataset/ipars.h"
#include "dataset/titan.h"
#include "handwritten/ipars_hand.h"
#include "handwritten/titan_hand.h"

namespace adv::hand {
namespace {

dataset::IparsConfig cfg_small() {
  dataset::IparsConfig cfg;
  cfg.nodes = 2;
  cfg.rels = 2;
  cfg.timesteps = 8;
  cfg.grid_per_node = 30;
  cfg.pad_vars = 12;  // full 17-variable schema, 18 files per chunk set
  return cfg;
}

TEST(IparsHandTest, L0AgreesWithGeneratedOnAllFig8Queries) {
  dataset::IparsConfig cfg = cfg_small();
  TempDir tmp("hand");
  auto gen = dataset::generate_ipars(cfg, dataset::IparsLayout::kL0,
                                     tmp.str());
  codegen::DataServicePlan plan = codegen::DataServicePlan::from_text(
      gen.descriptor_text, gen.dataset_name, gen.root);

  struct Case {
    const char* sql;
    IparsQuery hq;
  };
  std::vector<Case> cases;
  cases.push_back({"SELECT * FROM IparsData", {}});
  {
    IparsQuery q;
    q.time_lo = 3;
    q.time_hi = 6;
    cases.push_back(
        {"SELECT * FROM IparsData WHERE TIME >= 3 AND TIME <= 6", q});
  }
  {
    IparsQuery q;
    q.time_lo = 3;
    q.time_hi = 6;
    q.soil_gt = 0.7;
    cases.push_back({"SELECT * FROM IparsData WHERE TIME >= 3 AND TIME <= 6 "
                     "AND SOIL > 0.7",
                     q});
  }
  {
    IparsQuery q;
    q.time_lo = 3;
    q.time_hi = 6;
    q.speed_lt = 20.0;
    cases.push_back({"SELECT * FROM IparsData WHERE TIME >= 3 AND TIME <= 6 "
                     "AND SPEED(OILVX, OILVY, OILVZ) < 20.0",
                     q});
  }
  {
    IparsQuery q;
    q.rels = {1};
    cases.push_back({"SELECT * FROM IparsData WHERE REL = 1", q});
  }

  for (const auto& c : cases) {
    codegen::ExtractStats hs;
    expr::Table hand = run_ipars_l0(cfg, gen.root, c.hq, -1, &hs);
    expr::Table generated = plan.execute(c.sql);
    EXPECT_TRUE(hand.same_rows(generated)) << c.sql;
    EXPECT_GT(hs.rows_scanned, 0u);
  }
}

TEST(IparsHandTest, L0PerNodeRestriction) {
  dataset::IparsConfig cfg = cfg_small();
  TempDir tmp("hand");
  auto gen = dataset::generate_ipars(cfg, dataset::IparsLayout::kL0,
                                     tmp.str());
  IparsQuery q;
  expr::Table n0 = run_ipars_l0(cfg, gen.root, q, 0);
  expr::Table n1 = run_ipars_l0(cfg, gen.root, q, 1);
  EXPECT_EQ(n0.num_rows() + n1.num_rows(), cfg.total_rows());
  // Different grid partitions: no overlap in X beyond lattice reuse, but
  // certainly disjoint row sets (different GRID ids -> coordinates differ).
  EXPECT_FALSE(n0.same_rows(n1));
}

TEST(IparsHandTest, Layout1AgreesWithGenerated) {
  dataset::IparsConfig cfg = cfg_small();
  TempDir tmp("hand1");
  auto gen =
      dataset::generate_ipars(cfg, dataset::IparsLayout::kI, tmp.str());
  codegen::DataServicePlan plan = codegen::DataServicePlan::from_text(
      gen.descriptor_text, gen.dataset_name, gen.root);
  IparsQuery q;
  q.time_lo = 2;
  q.time_hi = 5;
  q.soil_gt = 0.5;
  expr::Table hand = run_ipars_layout1(cfg, gen.root, q);
  expr::Table generated = plan.execute(
      "SELECT * FROM IparsData WHERE TIME >= 2 AND TIME <= 5 AND SOIL > "
      "0.5");
  EXPECT_TRUE(hand.same_rows(generated));
  EXPECT_GT(hand.num_rows(), 0u);
}

TEST(TitanHandTest, AgreesWithGeneratedOnAllFig7Queries) {
  dataset::TitanConfig cfg;
  cfg.nodes = 2;
  cfg.cells_x = 4;
  cfg.cells_y = 4;
  cfg.cells_z = 2;
  cfg.points_per_chunk = 64;
  TempDir tmp("handt");
  auto gen = dataset::generate_titan(cfg, tmp.str());
  codegen::DataServicePlan plan = codegen::DataServicePlan::from_text(
      gen.descriptor_text, gen.dataset_name, gen.root);

  struct Case {
    const char* sql;
    TitanQuery hq;
  };
  std::vector<Case> cases;
  cases.push_back({"SELECT * FROM TitanData", {}});
  {
    TitanQuery q;
    q.x_lo = 0;
    q.x_hi = 10000;
    q.y_lo = 0;
    q.y_hi = 10000;
    q.z_lo = 0;
    q.z_hi = 100;
    cases.push_back({"SELECT * FROM TitanData WHERE X >= 0 AND X <= 10000 "
                     "AND Y >= 0 AND Y <= 10000 AND Z >= 0 AND Z <= 100",
                     q});
  }
  {
    TitanQuery q;
    q.dist_lt = 9000;
    cases.push_back(
        {"SELECT * FROM TitanData WHERE DISTANCE(X, Y, Z) < 9000", q});
  }
  {
    TitanQuery q;
    q.s1_lt = 0.01;
    cases.push_back({"SELECT * FROM TitanData WHERE S1 < 0.01", q});
  }
  {
    TitanQuery q;
    q.s1_lt = 0.5;
    cases.push_back({"SELECT * FROM TitanData WHERE S1 < 0.5", q});
  }

  for (const auto& c : cases) {
    codegen::ExtractStats hs;
    expr::Table hand = run_titan(cfg, gen.root, c.hq, -1, &hs);
    expr::Table generated = plan.execute(c.sql);
    EXPECT_TRUE(hand.same_rows(generated)) << c.sql;
  }
}

TEST(TitanHandTest, SpatialSkipReadsLess) {
  dataset::TitanConfig cfg;
  cfg.nodes = 1;
  cfg.cells_x = 8;
  cfg.cells_y = 8;
  cfg.cells_z = 2;
  cfg.points_per_chunk = 16;
  TempDir tmp("handt2");
  auto gen = dataset::generate_titan(cfg, tmp.str());
  TitanQuery narrow;
  narrow.x_hi = cfg.extent_x / 8 - 1;  // strictly inside the first slab
  codegen::ExtractStats narrow_stats, full_stats;
  run_titan(cfg, gen.root, narrow, -1, &narrow_stats);
  run_titan(cfg, gen.root, TitanQuery{}, -1, &full_stats);
  EXPECT_LT(narrow_stats.bytes_read, full_stats.bytes_read / 4);
}

}  // namespace
}  // namespace adv::hand
