// Tests for the VirtualTable facade and for descriptor corners not covered
// elsewhere: multiple file patterns per leaf, file-local DATATYPE
// attributes (skipped bytes), and open-time verification.
#include <gtest/gtest.h>

#include <filesystem>

#include "advirt.h"
#include "common/tempdir.h"
#include "dataset/ipars.h"
#include "dataset/layout_writer.h"
#include "dataset/titan.h"

namespace adv {
namespace {

TEST(VirtualTableTest, OpenQueryRoundTrip) {
  dataset::IparsConfig cfg;
  cfg.nodes = 2;
  cfg.rels = 2;
  cfg.timesteps = 6;
  cfg.grid_per_node = 10;
  cfg.pad_vars = 0;
  TempDir tmp("vt");
  auto gen = dataset::generate_ipars(cfg, dataset::IparsLayout::kV, tmp.str());

  VirtualTable::Options opt;
  opt.verify = true;
  VirtualTable vt =
      VirtualTable::open(gen.descriptor_text, "IparsData", gen.root, opt);
  EXPECT_EQ(vt.num_nodes(), 2);
  EXPECT_EQ(vt.schema().size(), 10u);
  EXPECT_EQ(vt.total_candidate_rows(), cfg.total_rows());
  EXPECT_FALSE(vt.has_index());

  const char* sql = "SELECT * FROM IparsData WHERE TIME <= 3 AND SOIL > 0.5";
  expr::Table got = vt.query(sql);
  expr::BoundQuery q = vt.plan().bind(sql);
  EXPECT_TRUE(got.same_rows(dataset::ipars_oracle(cfg, q)));

  // Detailed results carry node stats; a bad query throws.
  auto r = vt.query_detailed("SELECT REL FROM IparsData WHERE TIME = 1");
  EXPECT_EQ(r.node_stats.size(), 2u);
  EXPECT_THROW(vt.query("SELECT NOPE FROM IparsData"), QueryError);
}

TEST(VirtualTableTest, OpenWithIndexAndXml) {
  dataset::TitanConfig cfg;
  cfg.nodes = 1;
  cfg.cells_x = 4;
  cfg.cells_y = 4;
  cfg.cells_z = 2;
  cfg.points_per_chunk = 16;
  TempDir tmp("vtx");
  auto gen = dataset::generate_titan(cfg, tmp.str());

  // XML descriptor + built index.
  std::string xml = meta::to_xml(meta::parse_descriptor(gen.descriptor_text));
  VirtualTable::Options opt;
  opt.build_index = true;
  VirtualTable vt = VirtualTable::open(xml, "TitanData", gen.root, opt);
  ASSERT_TRUE(vt.has_index());
  EXPECT_EQ(vt.index()->num_chunks(),
            static_cast<std::size_t>(cfg.num_chunks()));

  const char* sql =
      "SELECT * FROM TitanData WHERE X <= 9999 AND Y <= 9999";
  expr::Table got = vt.query(sql);
  expr::BoundQuery q = vt.plan().bind(sql);
  EXPECT_TRUE(got.same_rows(dataset::titan_oracle(cfg, q)));

  // Saved index loads through the facade too.
  vt.index()->save(tmp.file("t.advidx"));
  VirtualTable::Options opt2;
  opt2.index_path = tmp.file("t.advidx");
  VirtualTable vt2 = VirtualTable::open(xml, "TitanData", gen.root, opt2);
  EXPECT_TRUE(vt2.has_index());
  EXPECT_TRUE(vt2.query(sql).same_rows(got));
}

TEST(VirtualTableTest, VerifyFailsLoudly) {
  dataset::IparsConfig cfg;
  cfg.nodes = 1;
  cfg.rels = 1;
  cfg.timesteps = 2;
  cfg.grid_per_node = 4;
  cfg.pad_vars = 0;
  TempDir tmp("vtv");
  auto gen = dataset::generate_ipars(cfg, dataset::IparsLayout::kI, tmp.str());
  std::filesystem::remove(gen.root + "/node0/ipars/ALL");
  VirtualTable::Options opt;
  opt.verify = true;
  EXPECT_THROW(
      VirtualTable::open(gen.descriptor_text, "IparsData", gen.root, opt),
      IoError);
}

// ---------------------------------------------------------------------------
// Descriptor corners

TEST(DescriptorCorners, MultipleFilePatternsPerLeaf) {
  // A leaf whose files come from two patterns: old-style and new-style
  // names covering disjoint REL ranges.
  const char* desc = R"(
[S]
REL = short int
V = float
[DS]
DatasetDescription = S
DIR[0] = n0/d
DATASET "DS" {
  DATASPACE { LOOP G 1:4:1 { V } }
  DATA {
    "DIR[0]/old_$REL" REL = 0:1:1 DIRID = 0:0:1
    "DIR[0]/new_$REL" REL = 2:3:1 DIRID = 0:0:1
  }
}
)";
  TempDir tmp("multi");
  meta::Descriptor d = meta::parse_descriptor(desc);
  afc::DatasetModel model(d, "DS", tmp.str());
  EXPECT_EQ(model.files().size(), 4u);

  dataset::ValueFn fn = [](const std::string&, const meta::VarEnv& vars) {
    return static_cast<double>(vars.get("REL") * 10 + vars.get("G"));
  };
  for (const auto& cf : model.files()) {
    std::filesystem::create_directories(
        std::filesystem::path(cf.full_path).parent_path());
    dataset::write_file_from_layout(*model.leaves()[cf.leaf].decl,
                                    model.schema(), cf.env, cf.full_path, fn);
  }
  codegen::DataServicePlan plan(d, "DS", tmp.str());
  expr::Table all = plan.execute("SELECT REL, V FROM DS");
  EXPECT_EQ(all.num_rows(), 16u);  // 4 rels x 4 grid points
  expr::Table r3 = plan.execute("SELECT V FROM DS WHERE REL = 3");
  ASSERT_EQ(r3.num_rows(), 4u);
  expr::Table r3s = r3;
  r3s.sort_rows();
  EXPECT_DOUBLE_EQ(r3s.at(0, 0), 31.0);
  EXPECT_DOUBLE_EQ(r3s.at(3, 0), 34.0);
}

TEST(DescriptorCorners, LocalDatatypeAttributesAreSkipped) {
  // The file interleaves a non-schema CHECKSUM field with the payload; the
  // extractor must skip its bytes and still produce correct rows.
  const char* desc = R"(
[S]
T = int
V = float
[DS]
DatasetDescription = S
DIR[0] = n0/d
DATASET "DS" {
  DATATYPE { S CHECKSUM = long }
  DATASPACE { LOOP T 1:5:1 { LOOP G 1:3:1 { CHECKSUM V } } }
  DATA { "DIR[0]/f" DIRID = 0:0:1 }
}
)";
  TempDir tmp("local");
  meta::Descriptor d = meta::parse_descriptor(desc);
  afc::DatasetModel model(d, "DS", tmp.str());
  // Record = 8 (CHECKSUM) + 4 (V) bytes.
  EXPECT_EQ(model.expected_file_bytes(model.files()[0]), 5u * 3u * 12u);

  dataset::ValueFn fn = [](const std::string& attr, const meta::VarEnv& v) {
    if (attr == "CHECKSUM") return 9.9e9;  // garbage the query never sees
    return static_cast<double>(v.get("T") * 100 + v.get("G"));
  };
  std::filesystem::create_directories(tmp.str() + "/n0/d");
  dataset::write_file_from_layout(*model.leaves()[0].decl, model.schema(),
                                  model.files()[0].env,
                                  model.files()[0].full_path, fn);
  codegen::DataServicePlan plan(d, "DS", tmp.str());
  expr::Table t = plan.execute("SELECT T, V FROM DS WHERE T = 4");
  ASSERT_EQ(t.num_rows(), 3u);
  expr::Table ts = t;
  ts.sort_rows();
  EXPECT_DOUBLE_EQ(ts.at(0, 1), 401.0);
  EXPECT_DOUBLE_EQ(ts.at(2, 1), 403.0);
}

TEST(DescriptorCorners, ChunkAndFileHeadersAreSkipped) {
  // Realistic instrument format: an 8-byte file header, then per-time-step
  // chunks that each start with a 4-byte marker before the record array.
  const char* desc = R"(
[S]
T = int
V = float
[DS]
DatasetDescription = S
DIR[0] = n0/d
DATASET "DS" {
  DATATYPE { S FILEMAGIC = long MARKER = int }
  DATASPACE {
    FILEMAGIC
    LOOP T 1:4:1 {
      MARKER
      LOOP G 1:3:1 { V }
    }
  }
  DATA { "DIR[0]/f" DIRID = 0:0:1 }
}
)";
  TempDir tmp("hdr");
  meta::Descriptor d = meta::parse_descriptor(desc);
  afc::DatasetModel model(d, "DS", tmp.str());
  // 8 (file header) + 4 * (4 marker + 3*4 payload).
  EXPECT_EQ(model.expected_file_bytes(model.files()[0]), 8u + 4u * 16u);
  // The region's base skips the file header; the TIME stride includes the
  // marker; the record starts 4 bytes into each chunk.
  const layout::Region& r = model.files()[0].regions[0];
  EXPECT_EQ(r.base_offset, 8u + 4u);
  ASSERT_EQ(r.path.size(), 1u);
  EXPECT_EQ(r.path[0].stride, 16u);

  dataset::ValueFn fn = [](const std::string& attr, const meta::VarEnv& v) {
    if (attr == "FILEMAGIC") return 1234.0;
    if (attr == "MARKER") return 42.0;
    return static_cast<double>(v.get("T") * 10 + v.get("G"));
  };
  std::filesystem::create_directories(tmp.str() + "/n0/d");
  dataset::write_file_from_layout(*model.leaves()[0].decl, model.schema(),
                                  model.files()[0].env,
                                  model.files()[0].full_path, fn);
  codegen::DataServicePlan plan(d, "DS", tmp.str());
  EXPECT_TRUE(plan.verify_files().empty());
  expr::Table t = plan.execute("SELECT T, V FROM DS WHERE T >= 2");
  ASSERT_EQ(t.num_rows(), 9u);  // T in {2,3,4} x 3 grid points
  expr::Table ts = t;
  ts.sort_rows();
  EXPECT_DOUBLE_EQ(ts.at(0, 1), 21.0);
  EXPECT_DOUBLE_EQ(ts.at(8, 1), 43.0);
}

TEST(DescriptorCorners, SchemaAttrHeadersStillRejected) {
  const char* mixed = R"(
[S]
T = int
V = float
[DS]
DatasetDescription = S
DIR[0] = n0/d
DATASET "DS" {
  DATASPACE { LOOP T 1:4:1 { V LOOP G 1:3:1 { V } } }
  DATA { "DIR[0]/f" DIRID = 0:0:1 }
}
)";
  EXPECT_THROW(meta::parse_descriptor(mixed), ValidationError);
  const char* toplevel = R"(
[S]
T = int
V = float
[DS]
DatasetDescription = S
DIR[0] = n0/d
DATASET "DS" {
  DATASPACE { V LOOP T 1:4:1 { LOOP G 1:3:1 { V } } }
  DATA { "DIR[0]/f" DIRID = 0:0:1 }
}
)";
  EXPECT_THROW(meta::parse_descriptor(toplevel), ValidationError);
}

}  // namespace
}  // namespace adv
