// Tests for the C++ source emitter: structural checks on the emitted unit,
// plus a full round trip — compile the generated code with the system
// compiler, dlopen it, and verify its rows against the interpreted engine
// and the oracle.
#include <dlfcn.h>
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>

#include "codegen/emit.h"
#include "codegen/plan.h"
#include "common/tempdir.h"
#include "dataset/ipars.h"
#include "dataset/titan.h"

namespace adv::codegen {
namespace {

dataset::IparsConfig tiny_cfg() {
  dataset::IparsConfig cfg;
  cfg.nodes = 2;
  cfg.rels = 2;
  cfg.timesteps = 6;
  cfg.grid_per_node = 10;
  cfg.pad_vars = 0;
  return cfg;
}

TEST(EmitTest, EmitsWellFormedSource) {
  std::string text =
      dataset::ipars_descriptor_text(tiny_cfg(), dataset::IparsLayout::kL0);
  afc::DatasetModel model(meta::parse_descriptor(text), "IparsData", "/x");
  std::string src = emit_cpp(model);
  // ABI entry points present.
  EXPECT_NE(src.find("advgen_scan"), std::string::npos);
  EXPECT_NE(src.find("advgen_num_attrs"), std::string::npos);
  // One group per (node, realization) combination.
  EXPECT_NE(src.find("group 3"), std::string::npos);
  EXPECT_EQ(src.find("group 4"), std::string::npos);
  // Relative (not rooted) file paths.
  EXPECT_NE(src.find("\"node0/ipars/COORDS\""), std::string::npos);
  EXPECT_EQ(src.find("\"/x/"), std::string::npos);
  // Loop pruning against the query intervals is generated.
  EXPECT_NE(src.find("LOOP TIME"), std::string::npos);
}

struct Collector {
  std::vector<std::vector<double>> rows;
  int ncols = 0;
};

extern "C" void collect_row(void* ctx, const double* row) {
  auto* c = static_cast<Collector*>(ctx);
  c->rows.emplace_back(row, row + c->ncols);
}

using ScanFn = long long (*)(const char*, const double*, const double*,
                             void (*)(void*, const double*), void*);

// Compiles emitted source into a shared object and returns the handle.
void* compile_and_open(const std::string& src, const TempDir& tmp) {
  std::string cpp = tmp.file("gen.cpp");
  std::string so = tmp.file("libgen.so");
  write_text_file(cpp, src);
  std::string cmd =
      "g++ -std=c++17 -O1 -shared -fPIC -o " + so + " " + cpp + " 2>&1";
  FILE* p = ::popen(cmd.c_str(), "r");
  EXPECT_NE(p, nullptr);
  std::string output;
  char buf[512];
  while (p && fgets(buf, sizeof buf, p)) output += buf;
  int rc = p ? ::pclose(p) : -1;
  EXPECT_EQ(rc, 0) << "compiler said:\n" << output;
  void* handle = ::dlopen(so.c_str(), RTLD_NOW);
  EXPECT_NE(handle, nullptr) << ::dlerror();
  return handle;
}

TEST(EmitTest, CompiledCodeMatchesInterpretedEngine) {
  dataset::IparsConfig cfg = tiny_cfg();
  TempDir tmp("emit");
  auto gen =
      dataset::generate_ipars(cfg, dataset::IparsLayout::kL0, tmp.str());
  DataServicePlan plan = DataServicePlan::from_text(
      gen.descriptor_text, gen.dataset_name, gen.root);

  std::string src = emit_cpp(plan.model());
  void* handle = compile_and_open(src, tmp);
  ASSERT_NE(handle, nullptr);
  auto scan = reinterpret_cast<ScanFn>(::dlsym(handle, "advgen_scan"));
  ASSERT_NE(scan, nullptr);
  auto nattrs_fn =
      reinterpret_cast<int (*)()>(::dlsym(handle, "advgen_num_attrs"));
  ASSERT_NE(nattrs_fn, nullptr);
  int n = nattrs_fn();
  EXPECT_EQ(n, cfg.num_attrs());
  auto name_fn = reinterpret_cast<const char* (*)(int)>(
      ::dlsym(handle, "advgen_attr_name"));
  ASSERT_NE(name_fn, nullptr);
  EXPECT_STREQ(name_fn(1), "TIME");

  // Interval query: TIME in [2,4], SOIL in [0.5, 1e9].
  std::vector<double> lo(static_cast<std::size_t>(n), -HUGE_VAL);
  std::vector<double> hi(static_cast<std::size_t>(n), HUGE_VAL);
  lo[1] = 2;
  hi[1] = 4;
  lo[5] = 0.5;

  Collector col;
  col.ncols = n;
  long long delivered = scan(gen.root.c_str(), lo.data(), hi.data(),
                             collect_row, &col);
  ASSERT_GE(delivered, 0) << "generated scan failed with " << delivered;
  EXPECT_EQ(static_cast<std::size_t>(delivered), col.rows.size());

  // Reference: interpreted engine with the equivalent SQL.
  expr::Table want = plan.execute(
      "SELECT * FROM IparsData WHERE TIME >= 2 AND TIME <= 4 AND SOIL >= "
      "0.5");
  ASSERT_EQ(col.rows.size(), want.num_rows());
  expr::Table got(want.columns());
  for (const auto& r : col.rows) got.append_row(r.data());
  EXPECT_TRUE(got.same_rows(want));
  EXPECT_GT(want.num_rows(), 0u);

  ::dlclose(handle);
}

TEST(EmitTest, CompiledCodeReportsIoErrors) {
  dataset::IparsConfig cfg = tiny_cfg();
  TempDir tmp("emit2");
  std::string text =
      dataset::ipars_descriptor_text(cfg, dataset::IparsLayout::kI);
  afc::DatasetModel model(meta::parse_descriptor(text), "IparsData", "/x");
  std::string src = emit_cpp(model);
  void* handle = compile_and_open(src, tmp);
  ASSERT_NE(handle, nullptr);
  auto scan = reinterpret_cast<ScanFn>(::dlsym(handle, "advgen_scan"));
  ASSERT_NE(scan, nullptr);
  std::vector<double> lo(static_cast<std::size_t>(cfg.num_attrs()),
                         -HUGE_VAL);
  std::vector<double> hi(static_cast<std::size_t>(cfg.num_attrs()),
                         HUGE_VAL);
  Collector col;
  col.ncols = cfg.num_attrs();
  long long rc = scan("/nonexistent-root", lo.data(), hi.data(), collect_row,
                      &col);
  EXPECT_LT(rc, 0);  // -errno
  ::dlclose(handle);
}

class EmitAllLayouts : public ::testing::TestWithParam<dataset::IparsLayout> {};

TEST_P(EmitAllLayouts, EmissionIsSyntacticallyValidCpp) {
  dataset::IparsConfig cfg = tiny_cfg();
  std::string text = dataset::ipars_descriptor_text(cfg, GetParam());
  afc::DatasetModel model(meta::parse_descriptor(text), "IparsData", "/x");
  std::string src = emit_cpp(model);
  TempDir tmp("emitall");
  std::string cpp = tmp.file("gen.cpp");
  write_text_file(cpp, src);
  std::string cmd = "g++ -std=c++17 -fsyntax-only " + cpp + " 2>&1";
  EXPECT_EQ(std::system(cmd.c_str()), 0)
      << "layout " << dataset::to_string(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    AllLayouts, EmitAllLayouts,
    ::testing::ValuesIn(dataset::all_ipars_layouts()),
    [](const ::testing::TestParamInfo<dataset::IparsLayout>& info) {
      return std::string("Layout") + dataset::to_string(info.param);
    });

TEST(EmitTest, TitanEmissionCompilesAndAgrees) {
  dataset::TitanConfig cfg;
  cfg.nodes = 1;
  cfg.cells_x = 2;
  cfg.cells_y = 2;
  cfg.cells_z = 2;
  cfg.points_per_chunk = 32;
  TempDir tmp("emit3");
  auto gen = dataset::generate_titan(cfg, tmp.str());
  DataServicePlan plan = DataServicePlan::from_text(
      gen.descriptor_text, gen.dataset_name, gen.root);
  std::string src = emit_cpp(plan.model());
  void* handle = compile_and_open(src, tmp);
  ASSERT_NE(handle, nullptr);
  auto scan = reinterpret_cast<ScanFn>(::dlsym(handle, "advgen_scan"));
  std::vector<double> lo(8, -HUGE_VAL), hi(8, HUGE_VAL);
  hi[3] = 0.25;  // S1 <= 0.25
  Collector col;
  col.ncols = 8;
  long long rc =
      scan(gen.root.c_str(), lo.data(), hi.data(), collect_row, &col);
  ASSERT_GE(rc, 0);
  expr::Table want =
      plan.execute("SELECT * FROM TitanData WHERE S1 <= 0.25");
  EXPECT_EQ(col.rows.size(), want.num_rows());
  ::dlclose(handle);
}

}  // namespace
}  // namespace adv::codegen
