// Property-based soundness of the interval analysis: the index function
// prunes chunks using per-attribute intervals extracted from the WHERE
// clause, so for EVERY predicate and EVERY row, `matches(row)` must imply
// that each attribute value lies inside its extracted interval (and
// IN-set).  A violation would silently drop matching rows.  Random
// predicate trees and rows probe this; SQL text round-tripping rides along.
//
// Reproducing a failure: the trace names the seed; rerun just that seed
// with ADV_FUZZ_SEED=<seed> ./interval_fuzz_test (ADV_FUZZ_ITERS=K resizes
// the corpus, default 12 seeds).  See docs/TESTING.md.
#include <gtest/gtest.h>

#include "common/env.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "expr/predicate.h"
#include "metadata/model.h"
#include "sql/ast.h"

namespace adv::expr {
namespace {

constexpr int kAttrs = 4;

meta::Schema fuzz_schema() {
  meta::Schema s;
  s.name = "F";
  for (int i = 0; i < kAttrs; ++i)
    s.attrs.push_back({"A" + std::to_string(i), DataType::kFloat64});
  return s;
}

sql::ScalarPtr random_scalar(SplitMix64& rng, int depth) {
  switch (rng.next_below(depth > 0 ? 4 : 2)) {
    case 0:
      return sql::Scalar::make_literal(
          Value(std::floor(rng.next_unit() * 100)));
    case 1:
      return sql::Scalar::make_attr(
          "A" + std::to_string(rng.next_below(kAttrs)));
    case 2:
      return sql::Scalar::make_arith(
          "+-*"[rng.next_below(3)], random_scalar(rng, depth - 1),
          random_scalar(rng, depth - 1));
    default:
      return sql::Scalar::make_call(
          "MAG2", {random_scalar(rng, depth - 1)});
  }
}

sql::BoolExprPtr random_bool(SplitMix64& rng, int depth) {
  if (depth == 0 || rng.next_below(3) == 0) {
    if (rng.next_below(4) == 0) {
      std::vector<Value> vals;
      std::size_t n = 1 + rng.next_below(4);
      for (std::size_t i = 0; i < n; ++i)
        vals.push_back(Value(std::floor(rng.next_unit() * 100)));
      return sql::BoolExpr::make_in(
          "A" + std::to_string(rng.next_below(kAttrs)), std::move(vals));
    }
    sql::CmpOp ops[] = {sql::CmpOp::kLt, sql::CmpOp::kLe, sql::CmpOp::kGt,
                        sql::CmpOp::kGe, sql::CmpOp::kEq, sql::CmpOp::kNe};
    return sql::BoolExpr::make_cmp(ops[rng.next_below(6)],
                                   random_scalar(rng, 1),
                                   random_scalar(rng, 1));
  }
  switch (rng.next_below(3)) {
    case 0:
      return sql::BoolExpr::make_and(random_bool(rng, depth - 1),
                                     random_bool(rng, depth - 1));
    case 1:
      return sql::BoolExpr::make_or(random_bool(rng, depth - 1),
                                    random_bool(rng, depth - 1));
    default:
      return sql::BoolExpr::make_not(random_bool(rng, depth - 1));
  }
}

uint64_t seed_base() {
  return static_cast<uint64_t>(env_int("ADV_FUZZ_SEED", 0));
}
uint64_t seed_count() {
  if (env_int("ADV_FUZZ_SEED", -1) >= 0) return 1;  // pinned: replay one
  return static_cast<uint64_t>(env_int("ADV_FUZZ_ITERS", 12));
}

class IntervalFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IntervalFuzz, PruningIsSoundForMatchingRows) {
  SCOPED_TRACE(format("seed %llu  [replay: ADV_FUZZ_SEED=%llu "
                      "./interval_fuzz_test]",
                      static_cast<unsigned long long>(GetParam()),
                      static_cast<unsigned long long>(GetParam())));
  SplitMix64 rng(mix64(GetParam() ^ 0x1f2e3d));
  meta::Schema schema = fuzz_schema();

  for (int trial = 0; trial < 40; ++trial) {
    sql::SelectQuery q;
    q.select_attrs = {};
    q.table = "F";
    q.where = random_bool(rng, 3);
    SCOPED_TRACE("WHERE " + q.where->to_string());
    BoundQuery bound(q, schema);

    // SQL text round-trips to a fixed point.
    sql::SelectQuery reparsed = sql::parse_select(q.to_string());
    EXPECT_EQ(reparsed.to_string(), q.to_string());

    const QueryIntervals& qi = bound.intervals();
    for (int r = 0; r < 50; ++r) {
      double row[kAttrs];
      for (int a = 0; a < kAttrs; ++a) {
        // Mix of in-range, boundary-ish, and wild values.
        switch (rng.next_below(3)) {
          case 0: row[a] = std::floor(rng.next_unit() * 100); break;
          case 1: row[a] = rng.next_unit() * 100; break;
          default: row[a] = (rng.next_unit() - 0.5) * 1e6; break;
        }
      }
      if (!bound.matches(row)) continue;
      // Soundness: a matching row must survive interval/IN-set pruning on
      // every attribute.
      for (int a = 0; a < kAttrs; ++a) {
        EXPECT_TRUE(qi.value_may_match(static_cast<std::size_t>(a), row[a]))
            << "attr A" << a << " = " << row[a] << " matched the predicate "
            << "but was outside the extracted interval "
            << qi.interval(static_cast<std::size_t>(a)).to_string();
        EXPECT_TRUE(qi.chunk_may_match(static_cast<std::size_t>(a),
                                       row[a] - 0.5, row[a] + 0.5));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntervalFuzz,
                         ::testing::Range<uint64_t>(
                             seed_base(), seed_base() + seed_count()));

}  // namespace
}  // namespace adv::expr
