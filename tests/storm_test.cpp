// Tests for the STORM middleware simulation: cluster execution matches the
// single-process engine and the oracle, partitioning policies distribute
// correctly, node failures are contained, and the transfer model accounts
// simulated network time.
#include <gtest/gtest.h>

#include <filesystem>
#include <set>
#include <thread>

#include "common/tempdir.h"
#include "dataset/ipars.h"
#include "dataset/titan.h"
#include "index/minmax.h"
#include "storm/cluster.h"

namespace adv::storm {
namespace {

dataset::IparsConfig cfg4() {
  dataset::IparsConfig cfg;
  cfg.nodes = 4;
  cfg.rels = 2;
  cfg.timesteps = 10;
  cfg.grid_per_node = 25;
  cfg.pad_vars = 0;
  return cfg;
}

struct Fixture {
  TempDir tmp{"storm"};
  dataset::GeneratedIpars gen;
  std::shared_ptr<codegen::DataServicePlan> plan;

  explicit Fixture(dataset::IparsLayout layout = dataset::IparsLayout::kL0)
      : gen(dataset::generate_ipars(cfg4(), layout, tmp.str())),
        plan(std::make_shared<codegen::DataServicePlan>(
            meta::parse_descriptor(gen.descriptor_text), gen.dataset_name,
            gen.root)) {}
};

TEST(StormClusterTest, MatchesOracleAcrossNodes) {
  Fixture f;
  StormCluster cluster(f.plan);
  EXPECT_EQ(cluster.num_nodes(), 4);
  const char* sql =
      "SELECT * FROM IparsData WHERE TIME >= 3 AND TIME <= 7 AND SOIL > 0.4";
  QueryResult r = cluster.execute(sql);
  EXPECT_EQ(r.first_error(), "");
  expr::BoundQuery q = f.plan->bind(sql);
  expr::Table want = dataset::ipars_oracle(cfg4(), q);
  EXPECT_TRUE(r.merged().same_rows(want));
  EXPECT_EQ(r.total_rows(), want.num_rows());
  EXPECT_GT(r.makespan_seconds, 0.0);
  EXPECT_GT(r.wall_seconds, 0.0);
}

TEST(StormClusterTest, EveryNodeContributes) {
  Fixture f;
  StormCluster cluster(f.plan);
  QueryResult r = cluster.execute("SELECT * FROM IparsData");
  for (const auto& ns : r.node_stats) {
    EXPECT_GT(ns.rows_matched, 0u) << "node " << ns.node_id;
    EXPECT_GT(ns.bytes_read, 0u);
    EXPECT_GT(ns.afcs, 0u);
  }
  // The grid is partitioned evenly: nodes match equal row counts.
  uint64_t per_node = r.node_stats[0].rows_matched;
  for (const auto& ns : r.node_stats) EXPECT_EQ(ns.rows_matched, per_node);
}

TEST(StormClusterTest, SequentialModeAgrees) {
  Fixture f;
  ClusterOptions seq;
  seq.parallel_nodes = false;
  StormCluster par_cluster(f.plan);
  StormCluster seq_cluster(f.plan, seq);
  const char* sql = "SELECT REL, TIME, SGAS FROM IparsData WHERE SGAS < 0.3";
  expr::Table a = par_cluster.execute(sql).merged();
  expr::Table b = seq_cluster.execute(sql).merged();
  EXPECT_TRUE(a.same_rows(b));
  EXPECT_GT(a.num_rows(), 0u);
}

TEST(StormClusterTest, RoundRobinPartitioningBalances) {
  Fixture f;
  StormCluster cluster(f.plan);
  PartitionSpec spec;
  spec.policy = PartitionSpec::Policy::kRoundRobin;
  spec.num_consumers = 3;
  QueryResult r = cluster.execute("SELECT * FROM IparsData", spec);
  ASSERT_EQ(r.partitions.size(), 3u);
  uint64_t total = r.total_rows();
  EXPECT_EQ(total, cfg4().total_rows());
  for (const auto& p : r.partitions) {
    EXPECT_GT(p.num_rows(), total / 3 - total / 10);
    EXPECT_LT(p.num_rows(), total / 3 + total / 10);
  }
}

TEST(StormClusterTest, HashPartitioningIsDisjointAndComplete) {
  Fixture f;
  StormCluster cluster(f.plan);
  PartitionSpec spec;
  spec.policy = PartitionSpec::Policy::kHashAttr;
  spec.num_consumers = 4;
  spec.select_index = 1;  // TIME within SELECT *
  QueryResult r = cluster.execute("SELECT * FROM IparsData", spec);
  EXPECT_EQ(r.total_rows(), cfg4().total_rows());
  // Same TIME value always lands in the same partition.
  for (const auto& p : r.partitions) {
    std::set<double> times(p.column(1).begin(), p.column(1).end());
    for (std::size_t other = 0; other < r.partitions.size(); ++other) {
      const auto& op = r.partitions[other];
      if (&op == &p) continue;
      for (double t : op.column(1)) EXPECT_EQ(times.count(t), 0u);
    }
  }
}

TEST(StormClusterTest, RangePartitioningOrdersByValue) {
  Fixture f;
  StormCluster cluster(f.plan);
  PartitionSpec spec;
  spec.policy = PartitionSpec::Policy::kRangeAttr;
  spec.num_consumers = 2;
  spec.select_index = 0;  // SOIL
  spec.range_lo = 0.0;
  spec.range_hi = 1.0;
  QueryResult r = cluster.execute("SELECT SOIL FROM IparsData WHERE REL = 0",
                                  spec);
  for (double v : r.partitions[0].column(0)) EXPECT_LT(v, 0.5);
  for (double v : r.partitions[1].column(0)) EXPECT_GE(v, 0.5);
  EXPECT_GT(r.partitions[0].num_rows(), 0u);
  EXPECT_GT(r.partitions[1].num_rows(), 0u);
}

TEST(StormClusterTest, BadPartitionSpecRejected) {
  Fixture f;
  StormCluster cluster(f.plan);
  PartitionSpec spec;
  spec.num_consumers = 0;
  EXPECT_THROW(cluster.execute("SELECT * FROM IparsData", spec), QueryError);
  spec.num_consumers = 2;
  spec.policy = PartitionSpec::Policy::kHashAttr;
  spec.select_index = 99;
  EXPECT_THROW(cluster.execute("SELECT * FROM IparsData", spec), QueryError);
}

TEST(StormClusterTest, TransferModelAccountsTime) {
  Fixture f;
  ClusterOptions fast, slow;
  slow.transfer.bandwidth_bytes_per_sec = 1e6;  // 1 MB/s Fast-Ethernet-ish
  slow.transfer.latency_sec = 0.001;
  StormCluster c_fast(f.plan, fast);
  StormCluster c_slow(f.plan, slow);
  QueryResult rf = c_fast.execute("SELECT * FROM IparsData");
  QueryResult rs = c_slow.execute("SELECT * FROM IparsData");
  double fast_transfer = 0, slow_transfer = 0;
  for (const auto& ns : rf.node_stats) fast_transfer += ns.transfer_seconds;
  for (const auto& ns : rs.node_stats) slow_transfer += ns.transfer_seconds;
  EXPECT_EQ(fast_transfer, 0.0);
  EXPECT_GT(slow_transfer, 0.0);
  // Simulated time ~ bytes / bandwidth.
  uint64_t bytes = 0;
  for (const auto& ns : rs.node_stats) bytes += ns.bytes_sent;
  EXPECT_NEAR(slow_transfer, static_cast<double>(bytes) / 1e6, 1.0);
  // Results identical either way.
  EXPECT_TRUE(rf.merged().same_rows(rs.merged()));
}

TEST(StormClusterTest, NodeFailureIsContained) {
  Fixture f;
  // Destroy one node's data after planning structures are built.
  std::string victim;
  for (const auto& cf : f.plan->model().files()) {
    if (cf.node_id == 2) {
      victim = cf.full_path;
      break;
    }
  }
  ASSERT_FALSE(victim.empty());
  std::filesystem::remove(victim);

  StormCluster cluster(f.plan);
  QueryResult r = cluster.execute("SELECT * FROM IparsData");
  EXPECT_NE(r.first_error(), "");
  EXPECT_NE(r.node_stats[2].error, "");
  // The other three nodes still delivered their partitions.
  for (int n : {0, 1, 3})
    EXPECT_GT(r.node_stats[static_cast<std::size_t>(n)].rows_matched, 0u);
}

TEST(StormClusterTest, WorksWithSpatialIndexFilter) {
  dataset::TitanConfig tcfg;
  tcfg.nodes = 2;
  tcfg.cells_x = 4;
  tcfg.cells_y = 4;
  tcfg.cells_z = 2;
  tcfg.points_per_chunk = 32;
  TempDir tmp("storm-titan");
  auto gen = dataset::generate_titan(tcfg, tmp.str());
  auto plan = std::make_shared<codegen::DataServicePlan>(
      meta::parse_descriptor(gen.descriptor_text), gen.dataset_name,
      gen.root);
  index::MinMaxIndex idx = index::MinMaxIndex::build(*plan);

  StormCluster cluster(plan);
  const char* sql =
      "SELECT * FROM TitanData WHERE X <= 10000 AND Y <= 10000 AND Z <= 250";
  QueryResult with = cluster.execute(sql, {}, &idx);
  QueryResult without = cluster.execute(sql);
  EXPECT_TRUE(with.merged().same_rows(without.merged()));
  EXPECT_LT(with.total_bytes_read(), without.total_bytes_read());
}

TEST(StormClusterTest, UdfRegistrationThroughFilteringService) {
  Fixture f;
  FilteringService::register_filter(
      "STORM_TEST_HALF", 1,
      [](const double* a, std::size_t) { return a[0] / 2; });
  StormCluster cluster(f.plan);
  QueryResult r = cluster.execute(
      "SELECT SOIL FROM IparsData WHERE STORM_TEST_HALF(SOIL) > 0.45");
  for (double v : r.partitions[0].column(0)) EXPECT_GT(v, 0.9);
  EXPECT_GT(r.total_rows(), 0u);
}

TEST(StormClusterTest, BlockCyclicPartitioning) {
  Fixture f;
  StormCluster cluster(f.plan);
  PartitionSpec spec;
  spec.policy = PartitionSpec::Policy::kBlockCyclic;
  spec.num_consumers = 2;
  spec.block_size = 16;
  QueryResult r = cluster.execute("SELECT * FROM IparsData", spec);
  EXPECT_EQ(r.total_rows(), cfg4().total_rows());
  // Balanced within one block either way.
  uint64_t a = r.partitions[0].num_rows(), b = r.partitions[1].num_rows();
  EXPECT_LE(a > b ? a - b : b - a, 16u * cfg4().nodes);
}

TEST(StormClusterTest, ConcurrentQueriesOnOneCluster) {
  Fixture f;
  StormCluster cluster(f.plan);
  std::vector<std::thread> threads;
  std::vector<uint64_t> rows(4, 0);
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&cluster, &rows, i] {
      QueryResult r = cluster.execute(
          "SELECT * FROM IparsData WHERE REL = " + std::to_string(i % 2));
      rows[static_cast<std::size_t>(i)] = r.total_rows();
    });
  }
  for (auto& t : threads) t.join();
  for (uint64_t n : rows) EXPECT_EQ(n, cfg4().total_rows() / 2);
}

TEST(StormClusterTest, StreamingDeliversSameRows) {
  Fixture f;
  StormCluster cluster(f.plan);
  const char* sql = "SELECT * FROM IparsData WHERE SOIL > 0.6";
  expr::BoundQuery q = f.plan->bind(sql);

  expr::Table streamed(q.result_columns());
  uint64_t batches = 0;
  QueryResult r = cluster.execute_streaming(
      q,
      [&](const RowBatch& b) {
        ++batches;
        EXPECT_EQ(b.num_cols, q.select_slots().size());
        for (std::size_t i = 0; i < b.num_rows(); ++i)
          streamed.append_row(b.data.data() + i * b.num_cols);
      },
      {}, nullptr);
  EXPECT_TRUE(r.partitions.empty());  // stats only
  EXPECT_GT(batches, 0u);
  EXPECT_GT(r.makespan_seconds, 0.0);
  EXPECT_TRUE(streamed.same_rows(cluster.execute(sql).merged()));
}

// ---------------------------------------------------------------------------
// Channel

TEST(ChannelTest, FifoAndCloseSemantics) {
  Channel<int> ch(4);
  EXPECT_TRUE(ch.push(1));
  EXPECT_TRUE(ch.push(2));
  EXPECT_EQ(ch.pop().value(), 1);
  EXPECT_EQ(ch.pop().value(), 2);
  ch.push(3);
  ch.close();
  EXPECT_FALSE(ch.push(4));          // rejected after close
  EXPECT_EQ(ch.pop().value(), 3);    // drained after close
  EXPECT_FALSE(ch.pop().has_value());
  EXPECT_FALSE(ch.pop().has_value());
}

TEST(ChannelTest, BlockingProducersAndConsumer) {
  Channel<int> ch(2);  // small capacity to force producer blocking
  std::vector<std::thread> producers;
  for (int p = 0; p < 3; ++p) {
    producers.emplace_back([&ch, p] {
      for (int i = 0; i < 100; ++i) ch.push(p * 1000 + i);
    });
  }
  std::thread closer([&] {
    for (auto& t : producers) t.join();
    ch.close();
  });
  int count = 0;
  long long sum = 0;
  while (auto v = ch.pop()) {
    ++count;
    sum += *v;
  }
  closer.join();
  EXPECT_EQ(count, 300);
  long long want = 0;
  for (int p = 0; p < 3; ++p)
    for (int i = 0; i < 100; ++i) want += p * 1000 + i;
  EXPECT_EQ(sum, want);
}

}  // namespace
}  // namespace adv::storm
