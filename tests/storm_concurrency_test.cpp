// Stress tests for the intra-node parallel extraction pipeline: the
// multi-producer channel under contention, and the ordering contract —
// per-consumer partitions must be identical whether a node scans its AFC
// list with 1 thread or many, over every partition policy and io mode.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/io.h"
#include "common/tempdir.h"
#include "dataset/ipars.h"
#include "storm/cluster.h"

namespace adv::storm {
namespace {

// ---------------------------------------------------------------------------
// Channel stress

TEST(ChannelStressTest, ManyProducersTinyCapacity) {
  constexpr int kProducers = 8;
  constexpr int kPerProducer = 5000;
  Channel<int> ch(2);  // tiny capacity: producers block constantly
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&ch, p] {
      for (int i = 0; i < kPerProducer; ++i)
        ASSERT_TRUE(ch.push(p * kPerProducer + i));
    });
  }
  std::thread closer([&] {
    for (auto& t : producers) t.join();
    ch.close();
  });
  // Single consumer: every pushed value arrives exactly once.
  std::vector<char> seen(kProducers * kPerProducer, 0);
  int count = 0;
  while (auto v = ch.pop()) {
    ++count;
    ASSERT_GE(*v, 0);
    ASSERT_LT(*v, kProducers * kPerProducer);
    ASSERT_EQ(seen[static_cast<std::size_t>(*v)], 0) << "duplicate " << *v;
    seen[static_cast<std::size_t>(*v)] = 1;
  }
  closer.join();
  EXPECT_EQ(count, kProducers * kPerProducer);
}

TEST(ChannelStressTest, CloseUnblocksPendingProducers) {
  Channel<int> ch(1);
  ASSERT_TRUE(ch.push(0));  // fill it
  std::atomic<int> rejected{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < 4; ++p) {
    producers.emplace_back([&] {
      if (!ch.push(1)) rejected.fetch_add(1);  // blocks until close
    });
  }
  ch.close();
  for (auto& t : producers) t.join();
  EXPECT_EQ(rejected.load(), 4);  // all four were dropped, none deadlocked
  EXPECT_EQ(ch.pop().value(), 0);
  EXPECT_FALSE(ch.pop().has_value());
}

// ---------------------------------------------------------------------------
// Parallel/sequential partition equivalence

dataset::IparsConfig cfg4() {
  dataset::IparsConfig cfg;
  cfg.nodes = 4;
  cfg.rels = 2;
  cfg.timesteps = 12;
  cfg.grid_per_node = 25;
  cfg.pad_vars = 0;
  return cfg;
}

struct Fixture {
  TempDir tmp{"storm-conc"};
  dataset::GeneratedIpars gen;
  std::shared_ptr<codegen::DataServicePlan> plan;

  Fixture()
      : gen(dataset::generate_ipars(cfg4(), dataset::IparsLayout::kL0,
                                    tmp.str())),
        plan(std::make_shared<codegen::DataServicePlan>(
            meta::parse_descriptor(gen.descriptor_text), gen.dataset_name,
            gen.root)) {}
};

PartitionSpec spec_for(PartitionSpec::Policy policy) {
  PartitionSpec spec;
  spec.policy = policy;
  spec.num_consumers = 3;
  spec.select_index = 1;  // TIME within SELECT *
  spec.range_lo = 0;
  spec.range_hi = cfg4().timesteps;
  spec.block_size = 16;
  return spec;
}

// Every partition policy must hand each row to the same consumer no
// matter how many extraction workers scan the node and which io path
// reads the bytes (the scan-position ordering contract).
TEST(ParallelPipelineTest, PartitionsMatchSequentialForEveryPolicy) {
  Fixture f;
  // Filtered query: matched-row counts differ per AFC, which would expose
  // any matched-count-based (non-invariant) sequence numbering.
  const char* sql = "SELECT * FROM IparsData WHERE SOIL > 0.3";
  for (auto policy :
       {PartitionSpec::Policy::kSingle, PartitionSpec::Policy::kRoundRobin,
        PartitionSpec::Policy::kHashAttr, PartitionSpec::Policy::kRangeAttr,
        PartitionSpec::Policy::kBlockCyclic}) {
    ClusterOptions seq;
    seq.threads_per_node = 1;
    seq.io_mode = IoMode::kPread;
    ClusterOptions par;
    par.threads_per_node = 4;
    par.io_mode = IoMode::kMmap;
    StormCluster seq_cluster(f.plan, seq);
    StormCluster par_cluster(f.plan, par);
    QueryResult rs = seq_cluster.execute(sql, spec_for(policy));
    QueryResult rp = par_cluster.execute(sql, spec_for(policy));
    ASSERT_EQ(rs.first_error(), "");
    ASSERT_EQ(rp.first_error(), "");
    ASSERT_EQ(rs.partitions.size(), rp.partitions.size());
    EXPECT_GT(rp.total_rows(), 0u);
    for (std::size_t c = 0; c < rs.partitions.size(); ++c) {
      EXPECT_TRUE(rs.partitions[c].same_rows(rp.partitions[c]))
          << "policy " << static_cast<int>(policy) << " consumer " << c;
    }
  }
}

TEST(ParallelPipelineTest, SequentialNodeModeAgreesWithParallelWorkers) {
  Fixture f;
  const char* sql = "SELECT REL, TIME, SGAS FROM IparsData WHERE SGAS < 0.6";
  ClusterOptions opts;
  opts.parallel_nodes = false;  // nodes serial, workers parallel
  opts.threads_per_node = 3;
  StormCluster cluster(f.plan, opts);
  StormCluster plain(f.plan);
  expr::Table a = cluster.execute(sql).merged();
  expr::Table b = plain.execute(sql).merged();
  EXPECT_GT(a.num_rows(), 0u);
  EXPECT_TRUE(a.same_rows(b));
}

TEST(ParallelPipelineTest, StatsSurviveWorkerMerge) {
  Fixture f;
  ClusterOptions par;
  par.threads_per_node = 4;
  StormCluster cluster(f.plan, par);
  QueryResult r = cluster.execute("SELECT * FROM IparsData");
  EXPECT_EQ(r.total_rows(), cfg4().total_rows());
  uint64_t scanned = 0, matched = 0;
  for (const auto& ns : r.node_stats) {
    EXPECT_GT(ns.bytes_read, 0u);
    scanned += ns.rows_scanned;
    matched += ns.rows_matched;
  }
  EXPECT_EQ(scanned, cfg4().total_rows());
  EXPECT_EQ(matched, cfg4().total_rows());
}

TEST(ParallelPipelineTest, ConcurrentQueriesShareExtractionPool) {
  Fixture f;
  ClusterOptions par;
  par.threads_per_node = 4;
  StormCluster cluster(f.plan, par);
  std::vector<std::thread> threads;
  std::vector<uint64_t> rows(4, 0);
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&cluster, &rows, i] {
      QueryResult r = cluster.execute(
          "SELECT * FROM IparsData WHERE REL = " + std::to_string(i % 2));
      rows[static_cast<std::size_t>(i)] = r.total_rows();
    });
  }
  for (auto& t : threads) t.join();
  for (uint64_t n : rows) EXPECT_EQ(n, cfg4().total_rows() / 2);
}

// ---------------------------------------------------------------------------
// Shared file cache

TEST(FileCacheTest, SharesOneHandlePerPath) {
  TempDir tmp("filecache");
  std::string path = tmp.str() + "/data.bin";
  write_text_file(path, std::string(4096, 'x'));
  FileCache cache(8);
  auto a = cache.open(path, IoMode::kMmap);
  auto b = cache.open(path, IoMode::kMmap);
  EXPECT_EQ(a.get(), b.get());
  ASSERT_NE(a->mapped_data(), nullptr);
  EXPECT_EQ(a->mapped_size(), 4096u);
  EXPECT_EQ(a->mapped_data()[0], 'x');
  EXPECT_THROW(a->mapped_range(1, 4096), IoError);
  // A pread-mode hit returns the already-mapped handle unchanged.
  EXPECT_EQ(cache.open(path, IoMode::kPread).get(), a.get());
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  // Cleared handles stay usable while held.
  EXPECT_EQ(a->mapped_data()[4095], 'x');
}

}  // namespace
}  // namespace adv::storm
