// Tests for the query admission scheduler and the cooperative-cancellation
// plumbing underneath it: admission/queueing/rejection decisions, priority
// and FIFO ordering, cancel and deadline handling for queued and running
// queries, drain, and the CancelToken checks inside the thread pool, the
// extraction path, and the cluster.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "api/virtual_table.h"
#include "common/tempdir.h"
#include "common/thread_pool.h"
#include "dataset/ipars.h"
#include "sched/scheduler.h"
#include "storm/cluster.h"

namespace adv::sched {
namespace {

using namespace std::chrono_literals;

TEST(QuerySchedulerTest, AdmitsUpToLimitImmediately) {
  SchedulerOptions opts;
  opts.max_concurrent_queries = 4;
  QueryScheduler s(opts);
  std::vector<std::shared_ptr<QueryContext>> running;
  for (int i = 0; i < 4; ++i) {
    auto adm = s.submit();
    ASSERT_TRUE(adm.ctx);
    EXPECT_FALSE(adm.queued);
    EXPECT_TRUE(s.wait_admitted(adm.ctx));
    running.push_back(adm.ctx);
  }
  SchedulerMetrics m = s.metrics();
  EXPECT_EQ(m.running, 4u);
  EXPECT_EQ(m.admitted, 4u);
  EXPECT_EQ(m.queue_depth, 0u);
  for (auto& ctx : running) s.finish(ctx, Outcome::kCompleted);
  m = s.metrics();
  EXPECT_EQ(m.running, 0u);
  EXPECT_EQ(m.completed, 4u);
  EXPECT_EQ(m.peak_running, 4u);
  EXPECT_GT(m.run_time.count, 0u);
}

TEST(QuerySchedulerTest, UnlimitedWhenZero) {
  SchedulerOptions opts;
  opts.max_concurrent_queries = 0;
  QueryScheduler s(opts);
  for (int i = 0; i < 32; ++i) {
    auto adm = s.submit();
    ASSERT_TRUE(adm.ctx);
    EXPECT_FALSE(adm.queued);
  }
  EXPECT_EQ(s.metrics().running, 32u);
}

TEST(QuerySchedulerTest, QueuesBeyondLimitFifo) {
  SchedulerOptions opts;
  opts.max_concurrent_queries = 1;
  QueryScheduler s(opts);
  auto a = s.submit();
  auto b = s.submit();
  auto c = s.submit();
  ASSERT_FALSE(a.queued);
  ASSERT_TRUE(b.queued);
  ASSERT_TRUE(c.queued);
  EXPECT_EQ(b.queue_position, 0u);
  EXPECT_EQ(c.queue_position, 1u);
  EXPECT_EQ(s.metrics().queue_depth, 2u);

  s.finish(a.ctx, Outcome::kCompleted);
  EXPECT_TRUE(s.wait_admitted(b.ctx));   // b runs before c
  EXPECT_EQ(s.metrics().queue_depth, 1u);
  s.finish(b.ctx, Outcome::kCompleted);
  EXPECT_TRUE(s.wait_admitted(c.ctx));
  s.finish(c.ctx, Outcome::kCompleted);
  EXPECT_GE(b.ctx->queue_wait_seconds, 0.0);
  EXPECT_EQ(s.metrics().queue_wait.count, 3u);
}

TEST(QuerySchedulerTest, HigherPriorityOvertakesQueue) {
  SchedulerOptions opts;
  opts.max_concurrent_queries = 1;
  QueryScheduler s(opts);
  auto running = s.submit(/*priority=*/1);
  auto low = s.submit(/*priority=*/0);
  auto normal = s.submit(/*priority=*/1);
  auto high = s.submit(/*priority=*/2);
  ASSERT_TRUE(low.queued);
  ASSERT_TRUE(normal.queued);
  ASSERT_TRUE(high.queued);
  // A high-priority submission reports the whole lower-priority backlog
  // behind it, not ahead of it.
  EXPECT_EQ(high.queue_position, 0u);

  s.finish(running.ctx, Outcome::kCompleted);
  EXPECT_TRUE(s.wait_admitted(high.ctx));
  s.finish(high.ctx, Outcome::kCompleted);
  EXPECT_TRUE(s.wait_admitted(normal.ctx));
  s.finish(normal.ctx, Outcome::kCompleted);
  EXPECT_TRUE(s.wait_admitted(low.ctx));
  s.finish(low.ctx, Outcome::kCompleted);
}

TEST(QuerySchedulerTest, RejectsWhenQueueFull) {
  SchedulerOptions opts;
  opts.max_concurrent_queries = 1;
  opts.max_queue_depth = 2;
  QueryScheduler s(opts);
  auto a = s.submit();
  s.submit();
  s.submit();
  auto rejected = s.submit();
  EXPECT_FALSE(rejected.ctx);
  EXPECT_GT(rejected.retry_after_seconds, 0.0);
  EXPECT_NE(rejected.reject_reason.find("full"), std::string::npos);
  SchedulerMetrics m = s.metrics();
  EXPECT_EQ(m.rejected, 1u);
  EXPECT_EQ(m.submitted, 4u);
  EXPECT_EQ(m.peak_queue_depth, 2u);
  s.finish(a.ctx, Outcome::kCompleted);
}

TEST(QuerySchedulerTest, RetryAfterHintTracksBacklog) {
  SchedulerOptions opts;
  opts.max_concurrent_queries = 1;
  opts.max_queue_depth = 4;
  QueryScheduler s(opts);
  // Idle: a submission now would run immediately — nothing to wait for.
  EXPECT_EQ(s.retry_after_hint(), 0.0);
  auto a = s.submit();  // takes the only slot
  double full = s.retry_after_hint();
  EXPECT_GT(full, 0.0);
  auto b = s.submit();  // queued behind it
  // More backlog, longer hint (same EWMA basis, bigger queue).
  EXPECT_GT(s.retry_after_hint(), full);
  s.finish(a.ctx, Outcome::kCompleted);
  ASSERT_TRUE(s.wait_admitted(b.ctx));
  s.finish(b.ctx, Outcome::kCompleted);
  EXPECT_EQ(s.retry_after_hint(), 0.0);
  // Unlimited concurrency never asks anyone to back off.
  SchedulerOptions uopts;
  uopts.max_concurrent_queries = 0;
  QueryScheduler u(uopts);
  auto c = u.submit();
  EXPECT_EQ(u.retry_after_hint(), 0.0);
  u.finish(c.ctx, Outcome::kCompleted);
}

TEST(QuerySchedulerTest, CancelWhileQueued) {
  SchedulerOptions opts;
  opts.max_concurrent_queries = 1;
  QueryScheduler s(opts);
  auto a = s.submit();
  auto b = s.submit();
  auto c = s.submit();
  b.ctx->token.cancel();
  EXPECT_FALSE(s.wait_admitted(b.ctx));
  EXPECT_EQ(s.metrics().cancelled, 1u);
  // The cancelled entry freed its queue slot; c still runs after a.
  s.finish(a.ctx, Outcome::kCompleted);
  EXPECT_TRUE(s.wait_admitted(c.ctx));
  s.finish(c.ctx, Outcome::kCompleted);
  EXPECT_EQ(s.metrics().completed, 2u);
}

TEST(QuerySchedulerTest, DeadlineWhileQueued) {
  SchedulerOptions opts;
  opts.max_concurrent_queries = 1;
  QueryScheduler s(opts);
  auto a = s.submit();
  auto b = s.submit(/*priority=*/1, /*deadline_seconds=*/0.005);
  ASSERT_TRUE(b.queued);
  // Nobody frees a slot; the deadline must expel b from the queue.
  EXPECT_FALSE(s.wait_admitted(b.ctx));
  EXPECT_EQ(s.metrics().deadline_exceeded, 1u);
  s.finish(a.ctx, Outcome::kCompleted);
}

TEST(QuerySchedulerTest, DefaultDeadlineApplies) {
  SchedulerOptions opts;
  opts.max_concurrent_queries = 1;
  opts.default_deadline_seconds = 0.005;
  QueryScheduler s(opts);
  auto a = s.submit();
  EXPECT_TRUE(a.ctx->token.has_deadline());
  auto b = s.submit();
  EXPECT_FALSE(s.wait_admitted(b.ctx));  // default deadline fires in queue
  s.finish(a.ctx, Outcome::kCompleted);
}

TEST(QuerySchedulerTest, DrainCancelsQueuedAndWaitsForRunning) {
  SchedulerOptions opts;
  opts.max_concurrent_queries = 1;
  QueryScheduler s(opts);
  auto a = s.submit();
  auto b = s.submit();
  ASSERT_TRUE(b.queued);

  std::atomic<bool> drained{false};
  std::thread drainer([&] {
    s.drain();
    drained.store(true);
  });
  // Drain blocks on the running query...
  std::this_thread::sleep_for(20ms);
  EXPECT_FALSE(drained.load());
  // ...while the queued one is already expelled.
  EXPECT_FALSE(s.wait_admitted(b.ctx));
  s.finish(a.ctx, Outcome::kCompleted);
  drainer.join();
  EXPECT_TRUE(drained.load());
  // Post-drain submissions are rejected.
  auto late = s.submit();
  EXPECT_FALSE(late.ctx);
  EXPECT_NE(late.reject_reason.find("drain"), std::string::npos);
}

TEST(QuerySchedulerTest, ConcurrencyBoundHoldsUnderThreads) {
  SchedulerOptions opts;
  opts.max_concurrent_queries = 4;
  opts.max_queue_depth = 64;
  QueryScheduler s(opts);
  std::atomic<int> gauge{0}, peak{0};
  std::vector<std::thread> workers;
  for (int i = 0; i < 16; ++i) {
    workers.emplace_back([&] {
      auto adm = s.submit();
      ASSERT_TRUE(adm.ctx);
      ASSERT_TRUE(s.wait_admitted(adm.ctx));
      int now = gauge.fetch_add(1) + 1;
      int seen = peak.load();
      while (now > seen && !peak.compare_exchange_weak(seen, now)) {
      }
      std::this_thread::sleep_for(2ms);
      gauge.fetch_sub(1);
      s.finish(adm.ctx, Outcome::kCompleted);
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_LE(peak.load(), 4);
  SchedulerMetrics m = s.metrics();
  EXPECT_EQ(m.completed, 16u);
  EXPECT_LE(m.peak_running, 4u);
  EXPECT_EQ(m.running, 0u);
  EXPECT_EQ(m.queue_depth, 0u);
}

TEST(QuerySchedulerTest, EqualWeightTenantsAlternate) {
  SchedulerOptions opts;
  opts.max_concurrent_queries = 1;
  QueryScheduler s(opts);
  auto running = s.submit(1, 0, "a");
  auto a1 = s.submit(1, 0, "a");
  auto a2 = s.submit(1, 0, "a");
  auto b1 = s.submit(1, 0, "b");
  auto b2 = s.submit(1, 0, "b");
  ASSERT_TRUE(a1.queued && a2.queued && b1.queued && b2.queued);

  // Fair share interleaves the tenants even though a queued first: a
  // plain FIFO would run a1, a2, b1, b2.
  s.finish(running.ctx, Outcome::kCompleted);
  EXPECT_TRUE(s.wait_admitted(a1.ctx));
  s.finish(a1.ctx, Outcome::kCompleted);
  EXPECT_TRUE(s.wait_admitted(b1.ctx));
  s.finish(b1.ctx, Outcome::kCompleted);
  EXPECT_TRUE(s.wait_admitted(a2.ctx));
  s.finish(a2.ctx, Outcome::kCompleted);
  EXPECT_TRUE(s.wait_admitted(b2.ctx));
  s.finish(b2.ctx, Outcome::kCompleted);

  SchedulerMetrics m = s.metrics();
  EXPECT_EQ(m.tenants.at("a").completed, 3u);
  EXPECT_EQ(m.tenants.at("b").completed, 2u);
}

TEST(QuerySchedulerTest, WeightedFairShareFollowsWeights) {
  SchedulerOptions opts;
  opts.max_concurrent_queries = 1;
  TenantOptions heavy;
  heavy.weight = 2.0;
  opts.tenants["a"] = heavy;  // b keeps the default weight 1
  QueryScheduler s(opts);

  auto running = s.submit(1, 0, "a");
  std::vector<QueryScheduler::Admission> as, bs;
  for (int i = 0; i < 4; ++i) as.push_back(s.submit(1, 0, "a"));
  for (int i = 0; i < 4; ++i) bs.push_back(s.submit(1, 0, "b"));

  // Virtual time advances 1/weight per admission, so a 2:1 weight ratio
  // admits a twice as often: a1 b1 a2 a3 b2 a4 …
  const std::vector<std::shared_ptr<QueryContext>> want = {
      as[0].ctx, bs[0].ctx, as[1].ctx, as[2].ctx, bs[1].ctx, as[3].ctx,
      bs[2].ctx, bs[3].ctx,  // only b's backlog is left at the end
  };
  s.finish(running.ctx, Outcome::kCompleted);
  for (const auto& ctx : want) {
    ASSERT_TRUE(s.wait_admitted(ctx));
    s.finish(ctx, Outcome::kCompleted);
  }
  SchedulerMetrics m = s.metrics();
  EXPECT_EQ(m.tenants.at("a").completed, 5u);
  EXPECT_EQ(m.tenants.at("b").completed, 4u);
  EXPECT_DOUBLE_EQ(m.tenants.at("a").weight, 2.0);
}

TEST(QuerySchedulerTest, PerTenantRunningCapLeavesGlobalSlotsFree) {
  SchedulerOptions opts;
  opts.max_concurrent_queries = 4;
  TenantOptions capped;
  capped.max_running = 1;
  opts.tenants["a"] = capped;
  QueryScheduler s(opts);

  auto a0 = s.submit(1, 0, "a");
  ASSERT_FALSE(a0.queued);
  // a is at its cap: the next a waits even though 3 global slots are free…
  auto a1 = s.submit(1, 0, "a");
  EXPECT_TRUE(a1.queued);
  // …while another tenant sails through.
  auto b0 = s.submit(1, 0, "b");
  EXPECT_FALSE(b0.queued);
  EXPECT_EQ(s.metrics().tenants.at("a").running, 1u);

  s.finish(a0.ctx, Outcome::kCompleted);
  EXPECT_TRUE(s.wait_admitted(a1.ctx));
  s.finish(a1.ctx, Outcome::kCompleted);
  s.finish(b0.ctx, Outcome::kCompleted);
}

TEST(QuerySchedulerTest, TenantQueueQuotaRejectsWithTypedKind) {
  SchedulerOptions opts;
  opts.max_concurrent_queries = 1;
  opts.max_queue_depth = 16;
  TenantOptions metered;
  metered.max_queued = 1;
  opts.tenants["a"] = metered;
  QueryScheduler s(opts);

  auto a0 = s.submit(1, 0, "a");  // runs
  auto a1 = s.submit(1, 0, "a");  // fills the tenant queue
  ASSERT_TRUE(a1.queued);
  auto a2 = s.submit(1, 0, "a");  // over quota
  EXPECT_FALSE(a2.ctx);
  EXPECT_EQ(a2.reject_kind, RejectKind::kTenantQuota);
  EXPECT_NE(a2.reject_reason.find("quota"), std::string::npos);
  EXPECT_GT(a2.retry_after_seconds, 0.0);
  // Other tenants are untouched by a's quota.
  auto b0 = s.submit(1, 0, "b");
  EXPECT_TRUE(b0.queued);
  EXPECT_EQ(s.metrics().tenants.at("a").rejected, 1u);

  s.finish(a0.ctx, Outcome::kCompleted);
  EXPECT_TRUE(s.wait_admitted(a1.ctx));
  s.finish(a1.ctx, Outcome::kCompleted);
  EXPECT_TRUE(s.wait_admitted(b0.ctx));
  s.finish(b0.ctx, Outcome::kCompleted);
}

TEST(QuerySchedulerTest, GlobalQueueFullCarriesQueueFullKind) {
  SchedulerOptions opts;
  opts.max_concurrent_queries = 1;
  opts.max_queue_depth = 1;
  QueryScheduler s(opts);
  auto a = s.submit();
  s.submit();
  auto rejected = s.submit();
  EXPECT_FALSE(rejected.ctx);
  EXPECT_EQ(rejected.reject_kind, RejectKind::kQueueFull);
  s.finish(a.ctx, Outcome::kCompleted);
}

TEST(QuerySchedulerTest, IdleTenantVtimeCatchesUpOnReturn) {
  SchedulerOptions opts;
  opts.max_concurrent_queries = 1;
  QueryScheduler s(opts);
  // a runs alone for a while, racking up virtual time.
  for (int i = 0; i < 8; ++i) {
    auto adm = s.submit(1, 0, "a");
    ASSERT_FALSE(adm.queued);
    s.finish(adm.ctx, Outcome::kCompleted);
  }
  // Now b shows up while a keeps a backlog.  Without the clock catch-up
  // b's vtime would be 0 and it would win every slot until it "repaid"
  // a's history; with it, the two interleave from here on.
  auto running = s.submit(1, 0, "a");
  auto a1 = s.submit(1, 0, "a");
  auto a2 = s.submit(1, 0, "a");
  auto b1 = s.submit(1, 0, "b");
  auto b2 = s.submit(1, 0, "b");

  s.finish(running.ctx, Outcome::kCompleted);
  EXPECT_TRUE(s.wait_admitted(a1.ctx));
  s.finish(a1.ctx, Outcome::kCompleted);
  EXPECT_TRUE(s.wait_admitted(b1.ctx));
  s.finish(b1.ctx, Outcome::kCompleted);
  EXPECT_TRUE(s.wait_admitted(a2.ctx));
  s.finish(a2.ctx, Outcome::kCompleted);
  EXPECT_TRUE(s.wait_admitted(b2.ctx));
  s.finish(b2.ctx, Outcome::kCompleted);
}

TEST(QuerySchedulerTest, RetryHintDecaysWhenIdle) {
  SchedulerOptions opts;
  opts.max_concurrent_queries = 1;
  opts.retry_hint_halflife_seconds = 0.05;
  QueryScheduler s(opts);

  // Seed the EWMA with one real ~60 ms query.
  auto seed = s.submit();
  std::this_thread::sleep_for(60ms);
  s.finish(seed.ctx, Outcome::kCompleted);

  // Occupy the slot so the hint is nonzero, then let the scheduler sit
  // with no finishes: the EWMA basis must halve every 50 ms instead of
  // freezing at the burst's run time.
  auto busy = s.submit();
  double fresh = s.retry_after_hint();
  EXPECT_GT(fresh, 0.01);
  std::this_thread::sleep_for(300ms);  // six half-lives ≈ ÷64
  double decayed = s.retry_after_hint();
  EXPECT_LT(decayed, fresh * 0.3);
  EXPECT_GE(decayed, 1e-3);  // floor: "retry soon", never "retry never"
  s.finish(busy.ctx, Outcome::kCompleted);
  EXPECT_EQ(s.retry_after_hint(), 0.0);
}

TEST(LatencyHistogramTest, BucketsByLog2Milliseconds) {
  LatencyHistogram h;
  h.add(0.0001);  // < 1 ms -> bucket 0
  h.add(0.003);   // ~3 ms
  h.add(1.0);     // 1 s
  EXPECT_EQ(h.count, 3u);
  EXPECT_GT(h.buckets[0], 0u);
  EXPECT_NEAR(h.mean_seconds(), (0.0001 + 0.003 + 1.0) / 3, 1e-9);
  uint64_t total = 0;
  for (uint64_t b : h.buckets) total += b;
  EXPECT_EQ(total, 3u);
}

// ---------------------------------------------------------------------------
// Cancellation plumbing below the scheduler.

TEST(CancelTokenTest, FiresOnCancelAndDeadline) {
  CancelToken t;
  EXPECT_FALSE(t.cancelled());
  EXPECT_NO_THROW(t.check());
  t.set_deadline_after(0.002);
  EXPECT_TRUE(t.has_deadline());
  std::this_thread::sleep_for(5ms);
  EXPECT_TRUE(t.deadline_exceeded());
  EXPECT_THROW(t.check(), CancelledError);
  CancelToken c;
  c.cancel();
  EXPECT_TRUE(c.cancel_requested());
  EXPECT_THROW(c.check(), CancelledError);
}

TEST(ThreadPoolCancelTest, ParallelForStopsOnCancel) {
  ThreadPool pool(2);
  CancelToken token;
  std::atomic<std::size_t> ran{0};
  EXPECT_THROW(
      pool.parallel_for(
          10000,
          [&](std::size_t) {
            if (ran.fetch_add(1) == 5) token.cancel();
            std::this_thread::sleep_for(std::chrono::microseconds(10));
          },
          &token),
      CancelledError);
  // The fired token stopped the sweep long before 10000 iterations.
  EXPECT_LT(ran.load(), 9000u);
}

struct ClusterFixture {
  TempDir tmp{"sched"};
  dataset::IparsConfig cfg;
  dataset::GeneratedIpars gen;
  std::shared_ptr<codegen::DataServicePlan> plan;

  static dataset::IparsConfig make_cfg() {
    dataset::IparsConfig c;
    c.nodes = 2;
    c.rels = 2;
    c.timesteps = 8;
    c.grid_per_node = 16;
    c.pad_vars = 0;
    return c;
  }

  ClusterFixture()
      : cfg(make_cfg()),
        gen(dataset::generate_ipars(cfg, dataset::IparsLayout::kV,
                                    tmp.str())),
        plan(std::make_shared<codegen::DataServicePlan>(
            meta::parse_descriptor(gen.descriptor_text), gen.dataset_name,
            gen.root)) {}
};

TEST(ClusterCancelTest, PreCancelledTokenAbortsAllNodes) {
  ClusterFixture f;
  storm::StormCluster cluster(f.plan);
  CancelToken token;
  token.cancel();
  storm::QueryResult r =
      cluster.execute("SELECT * FROM IparsData", {}, nullptr, &token);
  ASSERT_EQ(r.node_stats.size(), 2u);
  for (const auto& ns : r.node_stats)
    EXPECT_NE(ns.error.find("cancelled"), std::string::npos) << ns.error;
  EXPECT_EQ(r.total_rows(), 0u);
}

TEST(ClusterCancelTest, ExpiredDeadlineAbortsWithDeadlineMessage) {
  ClusterFixture f;
  storm::StormCluster cluster(f.plan);
  CancelToken token;
  token.set_deadline(CancelToken::Clock::now());  // already expired
  storm::QueryResult r =
      cluster.execute("SELECT * FROM IparsData", {}, nullptr, &token);
  for (const auto& ns : r.node_stats)
    EXPECT_NE(ns.error.find("deadline"), std::string::npos) << ns.error;
}

TEST(ClusterCancelTest, UntouchedTokenDoesNotPerturbResults) {
  ClusterFixture f;
  storm::StormCluster cluster(f.plan);
  const char* sql = "SELECT * FROM IparsData WHERE SOIL > 0.25";
  storm::QueryResult base = cluster.execute(sql);
  CancelToken token;
  storm::QueryResult with = cluster.execute(sql, {}, nullptr, &token);
  EXPECT_EQ(base.first_error(), "");
  EXPECT_EQ(with.first_error(), "");
  EXPECT_TRUE(with.merged().same_rows(base.merged()));
}

TEST(ClusterCancelTest, CancelOneQueryLeavesConcurrentOnesIntact) {
  ClusterFixture f;
  storm::StormCluster cluster(f.plan);
  const char* sql = "SELECT * FROM IparsData WHERE SOIL > 0.25";
  storm::QueryResult base = cluster.execute(sql);

  CancelToken doomed;
  doomed.cancel();
  std::atomic<bool> ok{true};
  std::thread victim([&] {
    storm::QueryResult r = cluster.execute(sql, {}, nullptr, &doomed);
    if (r.first_error().find("cancelled") == std::string::npos)
      ok.store(false);
  });
  storm::QueryResult healthy = cluster.execute(sql);
  victim.join();
  EXPECT_TRUE(ok.load());
  EXPECT_EQ(healthy.first_error(), "");
  EXPECT_TRUE(healthy.merged().same_rows(base.merged()));
}

TEST(ClusterCancelTest, VirtualTableSurfacesCancellation) {
  ClusterFixture f;
  VirtualTable vt = VirtualTable::open(f.gen.descriptor_text,
                                       f.gen.dataset_name, f.gen.root);
  CancelToken token;
  token.cancel();
  try {
    vt.query("SELECT * FROM IparsData", &token);
    FAIL() << "expected CancelledError";
  } catch (const CancelledError& e) {
    EXPECT_NE(std::string(e.what()).find("cancelled"), std::string::npos);
  }
  // Plan-cache fast path (second run replays cached node plans) honors the
  // token too.
  expr::Table warm = vt.query("SELECT * FROM IparsData WHERE SOIL > 0.25");
  CancelToken token2;
  token2.cancel();
  EXPECT_THROW(
      vt.query("SELECT * FROM IparsData WHERE SOIL > 0.25", &token2),
      CancelledError);
  // And an untouched table still answers.
  EXPECT_GT(vt.query("SELECT * FROM IparsData WHERE SOIL > 0.25").num_rows(),
            0u);
  EXPECT_GT(warm.num_rows(), 0u);
}

}  // namespace
}  // namespace adv::sched
