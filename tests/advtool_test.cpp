// Integration tests for the advtool CLI: every subcommand driven end to end
// against a generated dataset.  The binary path arrives via $ADVTOOL (set by
// CMake from the build target).
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>

#include "common/io.h"
#include "common/tempdir.h"

namespace adv {
namespace {

std::string advtool() {
  const char* p = std::getenv("ADVTOOL");
  EXPECT_NE(p, nullptr) << "ADVTOOL env var not set";
  return p ? p : "";
}

struct RunResult {
  int exit_code;
  std::string output;
};

RunResult run(const std::string& args) {
  std::string cmd = advtool() + " " + args + " 2>&1";
  FILE* p = ::popen(cmd.c_str(), "r");
  RunResult r{-1, ""};
  if (!p) return r;
  char buf[512];
  while (fgets(buf, sizeof buf, p)) r.output += buf;
  int rc = ::pclose(p);
  r.exit_code = WIFEXITED(rc) ? WEXITSTATUS(rc) : -1;
  return r;
}

class AdvtoolTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    tmp_ = new TempDir("advtool");
    RunResult r = run("generate ipars --out " + tmp_->str() +
                      " --nodes 2 --rels 2 --timesteps 10 --grid 20 --pad 0"
                      " --layout L0");
    ASSERT_EQ(r.exit_code, 0) << r.output;
  }
  static void TearDownTestSuite() {
    delete tmp_;
    tmp_ = nullptr;
  }
  static std::string desc() { return tmp_->str() + "/descriptor.adv"; }
  static std::string root() { return tmp_->str(); }

  static TempDir* tmp_;
};

TempDir* AdvtoolTest::tmp_ = nullptr;

TEST_F(AdvtoolTest, ParseAndXmlConversion) {
  RunResult r = run("parse " + desc());
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("DATASET \"IparsData\""), std::string::npos);

  RunResult x = run("parse " + desc() + " --format xml");
  EXPECT_EQ(x.exit_code, 0);
  EXPECT_NE(x.output.find("<descriptor>"), std::string::npos);
  // The XML form is itself loadable (slice the document out of the merged
  // stdout/stderr stream).
  std::size_t begin = x.output.find("<?xml");
  std::size_t end = x.output.rfind("</descriptor>");
  ASSERT_NE(begin, std::string::npos);
  ASSERT_NE(end, std::string::npos);
  std::string xml_path = root() + "/descriptor.xml";
  write_text_file(xml_path, x.output.substr(begin, end + 13 - begin));
  RunResult v = run("verify " + xml_path + " IparsData --root " + root());
  EXPECT_EQ(v.exit_code, 0) << v.output;
}

TEST_F(AdvtoolTest, InfoAndVerify) {
  RunResult i = run("info " + desc() + " IparsData --root " + root());
  EXPECT_EQ(i.exit_code, 0);
  EXPECT_NE(i.output.find("nodes:    2"), std::string::npos);
  RunResult v = run("verify " + desc() + " IparsData --root " + root());
  EXPECT_EQ(v.exit_code, 0);
  EXPECT_NE(v.output.find("OK"), std::string::npos);
  // Verification against an empty root fails with exit code 1.
  TempDir empty("advtool-empty");
  RunResult bad = run("verify " + desc() + " IparsData --root " + empty.str());
  EXPECT_EQ(bad.exit_code, 1);
  EXPECT_NE(bad.output.find("PROBLEM"), std::string::npos);
}

TEST_F(AdvtoolTest, QueryLocal) {
  RunResult r = run("query " + desc() + " IparsData --root " + root() +
                    " --csv 2 \"SELECT REL, TIME FROM IparsData WHERE TIME "
                    "= 4\"");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("rows: 80"), std::string::npos);  // 2*2*20 rows
  EXPECT_NE(r.output.find("REL,TIME"), std::string::npos);
}

TEST_F(AdvtoolTest, IndexBuildAndUse) {
  std::string idx = root() + "/ipars.advidx";
  RunResult b = run("index " + desc() + " IparsData --root " + root() +
                    " --out " + idx);
  EXPECT_EQ(b.exit_code, 0) << b.output;
  EXPECT_TRUE(file_exists(idx));
  RunResult q = run("query " + desc() + " IparsData --root " + root() +
                    " --index " + idx +
                    " --csv 0 \"SELECT * FROM IparsData WHERE TIME = 1\"");
  EXPECT_EQ(q.exit_code, 0) << q.output;
}

TEST_F(AdvtoolTest, EmitCompiles) {
  std::string out = root() + "/gen.cpp";
  RunResult e = run("emit " + desc() + " IparsData --root " + root() +
                    " --out " + out);
  EXPECT_EQ(e.exit_code, 0) << e.output;
  std::string compile = "g++ -std=c++17 -fsyntax-only " + out + " 2>&1";
  EXPECT_EQ(std::system(compile.c_str()), 0);
}

TEST_F(AdvtoolTest, ErrorsAndUsage) {
  EXPECT_EQ(run("").exit_code, 2);
  EXPECT_EQ(run("frobnicate").exit_code, 2);
  EXPECT_EQ(run("parse /nonexistent.adv").exit_code, 1);
  RunResult r = run("query " + desc() + " IparsData --root " + root() +
                    " \"SELECT NOPE FROM IparsData\"");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("NOPE"), std::string::npos);
}

}  // namespace
}  // namespace adv
