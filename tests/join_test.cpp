// End-to-end tests for cross-dataset implicit-attribute joins
// (api/join_query.h): IparsData x TitanST against a brute-force
// nested-loop reference, pushdown pruning stats, the empty-intersection
// short circuit, and every typed rejection the analyzer documents.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "api/join_query.h"
#include "advirt.h"
#include "common/tempdir.h"
#include "dataset/ipars.h"
#include "dataset/titan_st.h"

namespace adv {
namespace {

// Brute-force reference: nested-loop equi-join of two tables on one key
// column per side, emitting left columns then right columns.
expr::Table nested_loop_join(const expr::Table& l, std::size_t lk,
                             const expr::Table& r, std::size_t rk) {
  std::vector<expr::Table::Column> cols = l.columns();
  cols.insert(cols.end(), r.columns().begin(), r.columns().end());
  expr::Table out(cols);
  std::vector<double> row(cols.size());
  for (std::size_t i = 0; i < l.num_rows(); ++i) {
    for (std::size_t j = 0; j < r.num_rows(); ++j) {
      if (std::llround(l.at(i, lk)) != std::llround(r.at(j, rk))) continue;
      std::size_t c = 0;
      for (std::size_t x = 0; x < l.columns().size(); ++x)
        row[c++] = l.at(i, x);
      for (std::size_t x = 0; x < r.columns().size(); ++x)
        row[c++] = r.at(j, x);
      out.append_row(row.data());
    }
  }
  return out;
}

std::size_t col_named(const expr::Table& t, const std::string& name) {
  for (std::size_t i = 0; i < t.columns().size(); ++i)
    if (t.columns()[i].name == name) return i;
  ADD_FAILURE() << "no column " << name;
  return 0;
}

// Shared fixture: a small IPARS dataset (TIME implicit via per-timestep
// file names, layout III) and a Titan-ST grid (TIME implicit via the
// structure loop) with overlapping TIME ranges 1..12 and 1..8.
class JoinTest : public ::testing::Test {
 protected:
  void SetUp() override {
    icfg_.nodes = 2;
    icfg_.rels = 2;
    icfg_.timesteps = 12;
    icfg_.grid_per_node = 8;
    icfg_.pad_vars = 0;
    igen_ = dataset::generate_ipars(icfg_, dataset::IparsLayout::kIII,
                                    tmp_.str());
    tcfg_.nodes = 1;
    tcfg_.lat_chunks = 2;
    tcfg_.lon_chunks = 2;
    tcfg_.timesteps = 8;
    tcfg_.cells_per_chunk = 16;
    tgen_ = dataset::generate_titan_st(tcfg_, tmp_.str());
    ipars_ = std::make_unique<VirtualTable>(VirtualTable::open(
        igen_.descriptor_text, "IparsData", igen_.root));
    titan_ = std::make_unique<VirtualTable>(VirtualTable::open(
        tgen_.descriptor_text, "TitanST", tgen_.root));
  }

  // Oracle table for one side query (brute force, engine-independent).
  expr::Table ipars_side(const std::string& sql) {
    return dataset::ipars_oracle(icfg_, ipars_->plan().bind(sql));
  }
  expr::Table titan_side(const std::string& sql) {
    return dataset::titan_st_oracle(tcfg_, titan_->plan().bind(sql));
  }

  TempDir tmp_{"join"};
  dataset::IparsConfig icfg_;
  dataset::TitanStConfig tcfg_;
  dataset::GeneratedIpars igen_;
  dataset::GeneratedTitanSt tgen_;
  std::unique_ptr<VirtualTable> ipars_, titan_;
};

TEST_F(JoinTest, MatchesBruteForceAndPrunes) {
  JoinStats st;
  expr::Table got = join_query(
      *ipars_, *titan_,
      "SELECT * FROM IparsData I, TitanST T "
      "WHERE I.TIME = T.TIME AND I.SOIL >= 0.85 AND T.S1 >= 0.5 "
      "AND T.LAT <= 2",
      &st);

  // SELECT * = side-0 schema then side-1 schema, alias-qualified.
  ASSERT_EQ(got.columns().size(), 10u + 8u);
  EXPECT_EQ(got.columns()[0].name, "I.REL");
  EXPECT_EQ(got.columns()[10].name, "T.TIME");

  expr::Table l =
      ipars_side("SELECT * FROM IparsData WHERE SOIL >= 0.85");
  expr::Table r = titan_side(
      "SELECT * FROM TitanST WHERE S1 >= 0.5 AND LAT <= 2");
  expr::Table want = nested_loop_join(l, col_named(l, "TIME"), r,
                                      col_named(r, "TIME"));
  EXPECT_TRUE(got.same_rows(want));
  EXPECT_GT(got.num_rows(), 0u);

  // Mutual pruning pushed TIME IN (1..8) into both side scans: the IPARS
  // side never reads timesteps 9..12 even though its own WHERE allows them.
  ASSERT_EQ(st.key_attrs.size(), 1u);
  EXPECT_EQ(st.key_attrs[0], "TIME=TIME");
  EXPECT_TRUE(st.pruned);
  EXPECT_EQ(st.keys_intersected, 8u);
  EXPECT_NE(st.left_sql.find("TIME IN (1, 2, 3, 4, 5, 6, 7, 8)"),
            std::string::npos);
  EXPECT_NE(st.right_sql.find("TIME IN (1, 2, 3, 4, 5, 6, 7, 8)"),
            std::string::npos);
  EXPECT_EQ(st.left_rows, l.num_rows());
  EXPECT_EQ(st.right_rows, r.num_rows());
  EXPECT_EQ(st.joined_rows, got.num_rows());
}

TEST_F(JoinTest, ProjectionAndReversedFromOrder) {
  const char* sql =
      "SELECT T.S1, I.SOIL, I.TIME FROM TitanST T, IparsData I "
      "WHERE T.TIME = I.TIME AND I.REL = 0 AND T.LON >= 2";
  // FROM order is reversed relative to the (left, right) arguments.
  expr::Table got = join_query(*ipars_, *titan_, sql);
  ASSERT_EQ(got.columns().size(), 3u);
  EXPECT_EQ(got.columns()[0].name, "T.S1");
  EXPECT_EQ(got.columns()[2].name, "I.TIME");

  expr::Table l = titan_side("SELECT * FROM TitanST WHERE LON >= 2");
  expr::Table r = ipars_side("SELECT * FROM IparsData WHERE REL = 0");
  expr::Table full = nested_loop_join(l, col_named(l, "TIME"), r,
                                      col_named(r, "TIME"));
  // Project the reference onto (S1, SOIL, TIME) column-by-column.
  std::size_t s1 = col_named(l, "S1");
  std::size_t soil = l.columns().size() + col_named(r, "SOIL");
  std::size_t time = l.columns().size() + col_named(r, "TIME");
  expr::Table want(got.columns());
  for (std::size_t i = 0; i < full.num_rows(); ++i) {
    double row[3] = {full.at(i, s1), full.at(i, soil), full.at(i, time)};
    want.append_row(row);
  }
  EXPECT_TRUE(got.same_rows(want));
  EXPECT_GT(got.num_rows(), 0u);
}

TEST_F(JoinTest, ColmajorSideJoinsIdentically) {
  // The same Titan-ST data in the column-major family joins bit-identically
  // (the layout changes I/O shape, not values).
  dataset::TitanStConfig ccfg = tcfg_;
  ccfg.colmajor = true;
  TempDir ctmp("joincm");
  auto cgen = dataset::generate_titan_st(ccfg, ctmp.str());
  VirtualTable cvt =
      VirtualTable::open(cgen.descriptor_text, "TitanST", cgen.root);
  const char* sql =
      "SELECT I.TIME, T.S2 FROM IparsData I, TitanST T "
      "WHERE I.TIME = T.TIME AND T.S2 < 0.3 AND I.SGAS >= 0.5";
  expr::Table row_major = join_query(*ipars_, *titan_, sql);
  expr::Table col_major = join_query(*ipars_, cvt, sql);
  EXPECT_TRUE(row_major.same_rows(col_major, 0.0));
  EXPECT_GT(row_major.num_rows(), 0u);
}

TEST_F(JoinTest, EmptyKeyIntersectionSkipsAllScanning) {
  // REL is implicit on the IPARS side with domain {0, 1}; TIME on the
  // Titan side is {1..8}... with rels=1 the domains are disjoint, so the
  // join must return an empty (but correctly shaped) table without
  // executing either side.
  dataset::IparsConfig cfg1 = icfg_;
  cfg1.rels = 1;
  cfg1.nodes = 1;
  cfg1.timesteps = 2;
  TempDir etmp("joinempty");
  auto egen = dataset::generate_ipars(cfg1, dataset::IparsLayout::kIII,
                                      etmp.str());
  codegen::DataServicePlan eplan = codegen::DataServicePlan::from_text(
      egen.descriptor_text, "IparsData", egen.root);
  // REL = 0 only; Titan TIME starts at 1 → empty intersection.
  sql::SelectQuery q = sql::parse_select(
      "SELECT * FROM IparsData I, TitanST T WHERE I.REL = T.TIME");
  bool executed = false;
  JoinStats st;
  expr::Table got = execute_join(
      q, eplan, titan_->plan(),
      [&](int, const std::string&) -> expr::Table {
        executed = true;
        return expr::Table(std::vector<expr::Table::Column>{});
      },
      &st);
  EXPECT_FALSE(executed);
  EXPECT_EQ(got.num_rows(), 0u);
  ASSERT_EQ(got.columns().size(), 10u + 8u);
  EXPECT_TRUE(st.pruned);
  EXPECT_EQ(st.keys_intersected, 0u);
  EXPECT_EQ(st.joined_rows, 0u);
}

TEST_F(JoinTest, LargeIntersectionFallsBackToRangePush) {
  // > 256 shared key values: the pushdown switches from an IN list to a
  // min/max range on both sides.
  dataset::IparsConfig cfg1;
  cfg1.nodes = 1;
  cfg1.rels = 1;
  cfg1.timesteps = 300;
  cfg1.grid_per_node = 2;
  cfg1.pad_vars = 0;
  dataset::TitanStConfig cfg2;
  cfg2.nodes = 1;
  cfg2.lat_chunks = 1;
  cfg2.lon_chunks = 1;
  cfg2.timesteps = 300;
  cfg2.cells_per_chunk = 2;
  TempDir ltmp("joinrange");
  auto g1 = dataset::generate_ipars(cfg1, dataset::IparsLayout::kIII,
                                    ltmp.str());
  auto g2 = dataset::generate_titan_st(cfg2, ltmp.str());
  VirtualTable v1 = VirtualTable::open(g1.descriptor_text, "IparsData",
                                       g1.root);
  VirtualTable v2 = VirtualTable::open(g2.descriptor_text, "TitanST",
                                       g2.root);
  JoinStats st;
  expr::Table got = join_query(
      v1, v2,
      "SELECT I.TIME, T.S1 FROM IparsData I, TitanST T "
      "WHERE I.TIME = T.TIME AND I.SOIL >= 2.0",
      &st);
  EXPECT_TRUE(st.pruned);
  EXPECT_EQ(st.keys_intersected, 300u);
  EXPECT_EQ(st.left_sql.find("IN ("), std::string::npos);
  EXPECT_NE(st.left_sql.find(">= 1"), std::string::npos);
  EXPECT_NE(st.left_sql.find("<= 300"), std::string::npos);
  // SOIL >= 2.0 is unsatisfiable (values are fractions), so the join is
  // empty even though every key matched.
  EXPECT_EQ(got.num_rows(), 0u);
  EXPECT_EQ(st.right_rows, cfg2.total_rows());
}

TEST_F(JoinTest, RejectsEveryUnsupportedShape) {
  auto bad = [&](const std::string& sql) {
    EXPECT_THROW(join_query(*ipars_, *titan_, sql), QueryError) << sql;
  };
  // Aggregation / ordering over a join.
  bad("SELECT COUNT(*) FROM IparsData I, TitanST T WHERE I.TIME = T.TIME");
  bad("SELECT * FROM IparsData I, TitanST T WHERE I.TIME = T.TIME "
      "ORDER BY I.TIME");
  bad("SELECT * FROM IparsData I, TitanST T WHERE I.TIME = T.TIME LIMIT 5");
  // Duplicate alias.
  bad("SELECT * FROM IparsData X, TitanST X WHERE X.TIME = X.TIME");
  // Cross-side predicate that is not plain attribute equality.
  bad("SELECT * FROM IparsData I, TitanST T WHERE I.TIME > T.TIME");
  bad("SELECT * FROM IparsData I, TitanST T "
      "WHERE I.TIME = T.TIME AND I.SOIL + T.S1 > 1");
  // Join key not implicit on both sides (SOIL/S1 are stored floats).
  bad("SELECT * FROM IparsData I, TitanST T WHERE I.SOIL = T.S1");
  // No join key at all.
  bad("SELECT * FROM IparsData I, TitanST T "
      "WHERE I.SOIL >= 0.9 AND T.S1 >= 0.9");
  // Unknown alias / unknown attribute / ambiguous unqualified attribute.
  bad("SELECT * FROM IparsData I, TitanST T WHERE Z.TIME = T.TIME");
  bad("SELECT * FROM IparsData I, TitanST T WHERE I.NOPE = T.TIME");
  bad("SELECT * FROM IparsData I, TitanST T "
      "WHERE I.TIME = T.TIME AND TIME = 1");
  // FROM names that don't match the supplied tables.
  bad("SELECT * FROM Nope N, TitanST T WHERE N.TIME = T.TIME");
  // Single-table SQL through the join entry point.
  EXPECT_THROW(join_query(*ipars_, *titan_, "SELECT * FROM IparsData"),
               QueryError);
}

TEST_F(JoinTest, SingleDatasetPathsRejectJoinSql) {
  const char* sql =
      "SELECT * FROM IparsData I, TitanST T WHERE I.TIME = T.TIME";
  EXPECT_THROW(ipars_->plan().bind(sql), QueryError);
  EXPECT_THROW(ipars_->query(sql), QueryError);
  try {
    ipars_->plan().bind(sql);
    FAIL() << "bind accepted a join";
  } catch (const QueryError& e) {
    EXPECT_NE(std::string(e.what()).find("join"), std::string::npos);
  }
}

}  // namespace
}  // namespace adv
