// Property-based tests: randomly generated physical layouts.
//
// The seven named layouts (L0, I-VI) cover the paper's experiment; this
// suite generalizes them.  For each seed we synthesize a random descriptor —
// random dimension nesting (REL/TIME order, sometimes a transposed record
// loop), random vertical partitioning of payload attributes across leaves,
// records vs per-variable arrays, file-name bindings vs loops, explicit vs
// implicit dimension storage — write matching data with the layout-driven
// writer, run random queries, and require exact agreement with a
// brute-force oracle.
//
// Reproducing a failure: every failing case's trace names its seed; rerun
// just that seed with
//   ADV_FUZZ_SEED=<seed> ./property_test
// ADV_FUZZ_ITERS=K widens/narrows the corpus (default 64 seeds).  See
// docs/TESTING.md.
#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

#include "afc/reference.h"
#include "codegen/plan.h"
#include "common/env.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "common/tempdir.h"
#include "dataset/layout_writer.h"
#include "metadata/model.h"

namespace adv {
namespace {

struct RandomDataset {
  // Dimensions.
  int nodes = 1;
  int rels = 1;       // REL in 0..rels-1
  int timesteps = 1;  // TIME in 1..timesteps
  int grid_per_node = 1;

  // Payload attributes P1..Pn (float32).
  int payloads = 1;

  // Layout shape.
  bool rel_in_filename = false;   // REL bound in DATA pattern vs LOOP REL
  bool time_in_filename = false;  // TIME bound in DATA pattern vs LOOP TIME
  bool time_outer = true;         // LOOP TIME outside LOOP REL
  bool transposed = false;        // record loop is TIME (GRID enumerated)
  bool arrays = false;            // per-variable arrays vs records
  bool store_dims = false;        // REL/TIME also stored in the records
  bool headers = false;           // file header + per-chunk marker fields
  int num_leaves = 1;             // vertical partition of the payloads

  uint64_t seed = 0;

  std::string descriptor() const;
  double value(const std::string& attr, int rel, int time, int gid) const;
  uint64_t total_rows() const {
    return static_cast<uint64_t>(nodes) * rels * timesteps * grid_per_node;
  }
};

RandomDataset random_dataset(uint64_t seed) {
  SplitMix64 rng(mix64(seed ^ 0xfadedcafeULL));
  RandomDataset d;
  d.seed = seed;
  d.nodes = 1 + static_cast<int>(rng.next_below(3));
  d.rels = 1 + static_cast<int>(rng.next_below(3));
  d.timesteps = 2 + static_cast<int>(rng.next_below(9));
  d.grid_per_node = 4 + static_cast<int>(rng.next_below(13));
  d.payloads = 1 + static_cast<int>(rng.next_below(5));
  d.rel_in_filename = rng.next_below(2) == 0;
  d.time_in_filename = !d.rel_in_filename && rng.next_below(4) == 0;
  d.time_outer = rng.next_below(2) == 0;
  // TIME cannot be both the record loop and a file-name binding (the
  // validator rejects such contradictory descriptors).
  d.transposed = !d.time_in_filename && rng.next_below(5) == 0;
  d.arrays = rng.next_below(2) == 0;
  d.store_dims = !d.transposed && rng.next_below(3) == 0;
  d.headers = rng.next_below(3) == 0;
  d.num_leaves = 1 + static_cast<int>(rng.next_below(
                         static_cast<uint64_t>(d.payloads)));
  return d;
}

double RandomDataset::value(const std::string& attr, int rel, int time,
                            int gid) const {
  if (attr == "REL") return rel;
  if (attr == "TIME") return time;
  uint64_t h = mix64(seed ^ 0x9999);
  h = hash_combine(h, std::hash<std::string>{}(attr));
  h = hash_combine(h, static_cast<uint64_t>(rel));
  h = hash_combine(h, static_cast<uint64_t>(time));
  h = hash_combine(h, static_cast<uint64_t>(gid));
  uint32_t m = static_cast<uint32_t>(h >> 40);
  return static_cast<double>(static_cast<float>(m) * (1.0f / 16777216.0f));
}

std::string RandomDataset::descriptor() const {
  std::ostringstream os;
  os << "[RND]\nREL = short int\nTIME = int\n";
  for (int p = 1; p <= payloads; ++p) os << "P" << p << " = float\n";
  os << "\n[RandomData]\nDatasetDescription = RND\n";
  for (int n = 0; n < nodes; ++n)
    os << "DIR[" << n << "] = node" << n << "/rnd\n";
  os << "\nDATASET \"RandomData\" {\n  DATATYPE { RND }\n"
     << "  DATAINDEX { REL TIME }\n";

  // Distribute payloads over leaves (round-robin contiguous).
  std::vector<std::vector<std::string>> leaf_attrs(
      static_cast<std::size_t>(num_leaves));
  for (int p = 0; p < payloads; ++p)
    leaf_attrs[static_cast<std::size_t>(p * num_leaves / payloads)]
        .push_back("P" + std::to_string(p + 1));

  const std::string grid_range =
      format("($DIRID*%d+1):(($DIRID+1)*%d):1", grid_per_node, grid_per_node);
  const std::string time_range = format("1:%d:1", timesteps);
  const std::string rel_range = format("0:%d:1", rels - 1);

  for (std::size_t l = 0; l < leaf_attrs.size(); ++l) {
    if (leaf_attrs[l].empty()) continue;
    std::vector<std::string> fields = leaf_attrs[l];
    if (store_dims) {
      fields.insert(fields.begin(), "TIME");
      fields.insert(fields.begin(), "REL");
    }
    os << "  DATASET \"leaf" << l << "\" {\n";
    if (headers) os << "    DATATYPE { RND HDR = long MARK = int }\n";
    os << "    DATASPACE {\n";
    if (headers) os << "      HDR\n";

    // Loop nest: structure loops for dims not bound in the file name, then
    // the record loop.
    std::vector<std::pair<std::string, std::string>> outer;  // ident, range
    if (!rel_in_filename && !time_in_filename) {
      if (time_outer) {
        outer.push_back({"TIME", time_range});
        outer.push_back({"REL", rel_range});
      } else {
        outer.push_back({"REL", rel_range});
        outer.push_back({"TIME", time_range});
      }
    } else if (rel_in_filename) {
      outer.push_back({"TIME", time_range});
    } else {  // time_in_filename
      outer.push_back({"REL", rel_range});
    }

    std::string record_ident = "GRID";
    std::string record_range = grid_range;
    if (transposed) {
      // TIME becomes the record loop; GRID is enumerated.
      record_ident = "TIME";
      record_range = time_range;
      for (auto& [ident, range] : outer)
        if (ident == "TIME") {
          ident = "GRID";
          range = grid_range;
        }
    }

    std::string pad = "      ";
    for (const auto& [ident, range] : outer) {
      os << pad << "LOOP " << ident << " " << range << " {\n";
      pad += "  ";
      if (headers) os << pad << "MARK\n";  // per-chunk marker
    }
    if (arrays) {
      for (const auto& f : fields)
        os << pad << "LOOP " << record_ident << " " << record_range << " { "
           << f << " }\n";
    } else {
      os << pad << "LOOP " << record_ident << " " << record_range << " { "
         << join(fields, " ") << " }\n";
    }
    for (std::size_t k = 0; k < outer.size(); ++k) {
      pad.resize(pad.size() - 2);
      os << pad << "}\n";
    }
    os << "    }\n    DATA { \"DIR[$DIRID]/L" << l;
    if (rel_in_filename) os << "R$REL";
    if (time_in_filename) os << "T$TIME";
    os << "\"";
    if (rel_in_filename) os << " REL = " << rel_range;
    if (time_in_filename) os << " TIME = " << time_range;
    os << format(" DIRID = 0:%d:1", nodes - 1) << " }\n  }\n";
  }
  os << "}\n";
  return os.str();
}

// Brute-force oracle over the dimension space.
expr::Table oracle(const RandomDataset& d, const expr::BoundQuery& q) {
  expr::Table out(q.result_columns());
  const meta::Schema& s = q.schema();
  const auto& needed = q.needed_attrs();
  std::vector<double> buf(needed.size());
  std::vector<double> sel(q.select_slots().size());
  for (int rel = 0; rel < d.rels; ++rel)
    for (int time = 1; time <= d.timesteps; ++time)
      for (int gid = 1; gid <= d.nodes * d.grid_per_node; ++gid) {
        for (std::size_t i = 0; i < needed.size(); ++i)
          buf[i] = d.value(s.at(static_cast<std::size_t>(needed[i])).name,
                           rel, time, gid);
        if (!q.matches(buf.data())) continue;
        for (std::size_t i = 0; i < sel.size(); ++i)
          sel[i] = buf[static_cast<std::size_t>(q.select_slots()[i])];
        out.append_row(sel.data());
      }
  return out;
}

// Random conjunctive query (always SELECT *: the virtual table's row
// multiplicity over projected-away dimensions is layout-defined, so the
// oracle compares full rows).
std::string random_query(const RandomDataset& d, SplitMix64& rng) {
  std::vector<std::string> conds;
  if (rng.next_below(2) == 0) {
    int lo = static_cast<int>(rng.next_below(
        static_cast<uint64_t>(d.timesteps))) + 1;
    int hi = lo + static_cast<int>(rng.next_below(
                      static_cast<uint64_t>(d.timesteps - lo + 1)));
    conds.push_back(format("TIME >= %d AND TIME <= %d", lo, hi));
  }
  if (d.rels > 1 && rng.next_below(2) == 0)
    conds.push_back(format("REL = %d",
                           static_cast<int>(rng.next_below(
                               static_cast<uint64_t>(d.rels)))));
  if (rng.next_below(2) == 0) {
    int p = 1 + static_cast<int>(rng.next_below(
                    static_cast<uint64_t>(d.payloads)));
    conds.push_back(format("P%d %s 0.%d", p,
                           rng.next_below(2) == 0 ? "<" : ">=",
                           1 + static_cast<int>(rng.next_below(8))));
  }
  std::string sql = "SELECT * FROM RandomData";
  if (!conds.empty()) sql += " WHERE " + join(conds, " AND ");
  return sql;
}

uint64_t seed_base() {
  return static_cast<uint64_t>(env_int("ADV_FUZZ_SEED", 0));
}
uint64_t seed_count() {
  if (env_int("ADV_FUZZ_SEED", -1) >= 0) return 1;  // pinned: replay one
  return static_cast<uint64_t>(env_int("ADV_FUZZ_ITERS", 64));
}

class RandomLayoutTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomLayoutTest, EngineMatchesOracle) {
  RandomDataset d = random_dataset(GetParam());
  std::string text = d.descriptor();
  SCOPED_TRACE(format("seed %llu  [replay: ADV_FUZZ_SEED=%llu "
                      "./property_test]",
                      static_cast<unsigned long long>(GetParam()),
                      static_cast<unsigned long long>(GetParam())));
  SCOPED_TRACE("descriptor:\n" + text);

  TempDir tmp("prop");
  meta::Descriptor desc = meta::parse_descriptor(text);
  afc::DatasetModel model(desc, "RandomData", tmp.str());

  // Write the files the descriptor describes.
  dataset::ValueFn fn = [&d](const std::string& attr,
                             const meta::VarEnv& vars) {
    int rel = vars.has("REL") ? static_cast<int>(vars.get("REL")) : 0;
    int time = vars.has("TIME") ? static_cast<int>(vars.get("TIME")) : 0;
    int gid = vars.has("GRID") ? static_cast<int>(vars.get("GRID")) : 0;
    return d.value(attr, rel, time, gid);
  };
  for (const auto& cf : model.files()) {
    std::filesystem::create_directories(
        std::filesystem::path(cf.full_path).parent_path());
    const auto& leaf = model.leaves()[static_cast<std::size_t>(cf.leaf)];
    dataset::write_file_from_layout(*leaf.decl, model.schema(), cf.env,
                                    cf.full_path, fn);
  }

  codegen::DataServicePlan plan(desc, "RandomData", tmp.str());
  ASSERT_TRUE(plan.verify_files().empty());

  // A full scan must cover the table exactly once.
  {
    expr::BoundQuery q = plan.bind("SELECT * FROM RandomData");
    afc::PlanResult pr = plan.index_fn(q);
    EXPECT_EQ(pr.candidate_rows(), d.total_rows());
  }

  SplitMix64 rng(mix64(GetParam() ^ 0x51c2));
  for (int trial = 0; trial < 4; ++trial) {
    std::string sql = random_query(d, rng);
    SCOPED_TRACE("query: " + sql);
    expr::BoundQuery q = plan.bind(sql);
    expr::Table got = plan.execute(q);
    expr::Table want = oracle(d, q);
    ASSERT_EQ(got.num_rows(), want.num_rows());
    EXPECT_TRUE(got.same_rows(want));
    // Differential check against the literal Figure 5 reference planner.
    EXPECT_EQ(afc::reference::flatten(plan.index_fn(q)),
              afc::reference::plan_reference(plan.model(), q));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomLayoutTest,
                         ::testing::Range<uint64_t>(
                             seed_base(), seed_base() + seed_count()));

}  // namespace
}  // namespace adv
