// Tests for the zone-map index subsystem: build/save/load roundtrip via
// the minidb sidecars, AFC pruning correctness against the oracle, stale
// sidecar fallback, prune counters, and the VirtualTable plan cache.
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>

#include "advirt.h"
#include "common/tempdir.h"
#include "common/thread_pool.h"
#include "dataset/ipars.h"
#include "dataset/titan_st.h"

namespace adv {
namespace {

dataset::IparsConfig small_cfg() {
  dataset::IparsConfig cfg;
  cfg.nodes = 2;
  cfg.rels = 2;
  cfg.timesteps = 40;
  cfg.grid_per_node = 25;
  cfg.pad_vars = 2;
  return cfg;
}

// SOIL declines with time in the generated data, so a high-saturation
// predicate matches only early time steps — the shape chunk-level min/max
// metadata prunes well.
constexpr const char* kSelective =
    "SELECT * FROM IparsData WHERE SOIL >= 0.9";

TEST(ZoneMapTest, BuildCoversAllStoredAttributes) {
  TempDir tmp("zmb");
  auto gen = dataset::generate_ipars(small_cfg(), dataset::IparsLayout::kL0,
                                     tmp.str());
  codegen::DataServicePlan plan =
      codegen::DataServicePlan::from_text(gen.descriptor_text, "IparsData",
                                          gen.root);
  // REL and TIME are implicit (encoded in file names); the other ten
  // schema attributes are stored and must all be covered.
  std::vector<int> attrs = zonemap::ZoneMap::stored_attrs(plan);
  EXPECT_EQ(attrs.size(), 10u);
  for (int a : attrs) {
    const std::string& n = plan.schema().at(static_cast<std::size_t>(a)).name;
    EXPECT_NE(n, "REL");
    EXPECT_NE(n, "TIME");
  }

  ThreadPool pool(4);
  zonemap::ZoneMap zm = zonemap::ZoneMap::build(plan, &pool);
  EXPECT_GT(zm.num_chunks(), 0u);
  EXPECT_EQ(zm.num_files(), plan.model().files().size());
  // Parallel and sequential builds agree chunk for chunk.
  zonemap::ZoneMap seq = zonemap::ZoneMap::build(plan, nullptr);
  ASSERT_EQ(zm.num_chunks(), seq.num_chunks());
  for (const auto& [key, b] : zm.entries()) {
    const zonemap::ZoneBounds* sb = seq.find(key);
    ASSERT_NE(sb, nullptr);
    EXPECT_EQ(b.bounds, sb->bounds);
  }
}

TEST(ZoneMapTest, SidecarRoundTrip) {
  TempDir tmp("zmr");
  auto gen = dataset::generate_ipars(small_cfg(), dataset::IparsLayout::kL0,
                                     tmp.str());
  codegen::DataServicePlan plan =
      codegen::DataServicePlan::from_text(gen.descriptor_text, "IparsData",
                                          gen.root);
  zonemap::ZoneMap built = zonemap::ZoneMap::build(plan);
  std::string dir = tmp.str() + "/.zm";
  built.save(dir, plan);

  auto loaded = zonemap::ZoneMap::load(dir, plan);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->attrs(), built.attrs());
  EXPECT_EQ(loaded->num_stale_files(), 0u);
  ASSERT_EQ(loaded->num_chunks(), built.num_chunks());
  for (const auto& [key, b] : built.entries()) {
    const zonemap::ZoneBounds* lb = loaded->find(key);
    ASSERT_NE(lb, nullptr) << key.file << " @" << key.offset;
    EXPECT_EQ(b.bounds, lb->bounds);
  }
  // Missing sidecar -> nullopt, not an exception.
  EXPECT_FALSE(zonemap::ZoneMap::load(tmp.str() + "/nowhere", plan));
}

TEST(ZoneMapTest, PruningMatchesOracleAndReducesBytes) {
  dataset::IparsConfig cfg = small_cfg();
  TempDir tmp("zmp");
  auto gen = dataset::generate_ipars(cfg, dataset::IparsLayout::kL0,
                                     tmp.str());

  VirtualTable::Options plain;
  VirtualTable unindexed =
      VirtualTable::open(gen.descriptor_text, "IparsData", gen.root, plain);

  VirtualTable::Options zopt;
  zopt.build_zonemap = true;
  zopt.zonemap_dir = tmp.str() + "/.zm";
  VirtualTable indexed =
      VirtualTable::open(gen.descriptor_text, "IparsData", gen.root, zopt);
  ASSERT_TRUE(indexed.has_zonemap());

  storm::QueryResult cold = unindexed.query_detailed(kSelective);
  storm::QueryResult pruned = indexed.query_detailed(kSelective);

  // Identical rows, against each other and against the oracle.
  expr::BoundQuery q = indexed.plan().bind(kSelective);
  expr::Table expect = dataset::ipars_oracle(cfg, q);
  ASSERT_GT(expect.num_rows(), 0u);
  EXPECT_TRUE(cold.merged().same_rows(expect));
  EXPECT_TRUE(pruned.merged().same_rows(expect));

  // The zone map must drop whole AFCs and at least halve extraction I/O on
  // this selective query.
  EXPECT_EQ(cold.total_afcs_pruned(), 0u);
  EXPECT_GT(pruned.total_afcs_pruned(), 0u);
  EXPECT_GT(pruned.total_rows_pruned(), 0u);
  EXPECT_GT(pruned.total_bytes_skipped(), 0u);
  EXPECT_LE(pruned.total_bytes_read() * 2, cold.total_bytes_read());
  // What was skipped plus what was read covers the unindexed scan.
  EXPECT_EQ(pruned.total_bytes_read() + pruned.total_bytes_skipped(),
            cold.total_bytes_read());

  // A full scan (no interval predicate on an indexed attribute) prunes
  // nothing and still answers correctly.
  const char* all = "SELECT * FROM IparsData";
  storm::QueryResult full = indexed.query_detailed(all);
  EXPECT_EQ(full.total_afcs_pruned(), 0u);
  EXPECT_EQ(full.merged().num_rows(), cfg.total_rows());
}

TEST(ZoneMapTest, BuildsOverTitanStAndColmajorLayouts) {
  // The zone map must build over the spatio-temporal chunk grid and the
  // column-major array family, prune on the autocorrelated sensors, and
  // stay exact — for both record families.
  dataset::TitanStConfig cfg;
  cfg.nodes = 2;
  cfg.lat_chunks = 2;
  cfg.lon_chunks = 4;
  cfg.timesteps = 6;
  cfg.cells_per_chunk = 32;
  const char* selective = "SELECT * FROM TitanST WHERE S1 >= 0.9";
  for (bool colmajor : {false, true}) {
    cfg.colmajor = colmajor;
    TempDir tmp("zmt");
    auto gen = dataset::generate_titan_st(cfg, tmp.str());

    VirtualTable::Options plain;
    VirtualTable unindexed =
        VirtualTable::open(gen.descriptor_text, "TitanST", gen.root, plain);
    VirtualTable::Options zopt;
    zopt.build_zonemap = true;
    zopt.zonemap_dir = tmp.str() + "/.zm";
    VirtualTable indexed =
        VirtualTable::open(gen.descriptor_text, "TitanST", gen.root, zopt);
    ASSERT_TRUE(indexed.has_zonemap());

    storm::QueryResult cold = unindexed.query_detailed(selective);
    storm::QueryResult pruned = indexed.query_detailed(selective);
    expr::BoundQuery q = indexed.plan().bind(selective);
    expr::Table expect = dataset::titan_st_oracle(cfg, q);
    ASSERT_GT(expect.num_rows(), 0u) << "colmajor=" << colmajor;
    EXPECT_TRUE(cold.merged().same_rows(expect)) << "colmajor=" << colmajor;
    EXPECT_TRUE(pruned.merged().same_rows(expect)) << "colmajor=" << colmajor;
    EXPECT_GT(pruned.total_afcs_pruned(), 0u) << "colmajor=" << colmajor;
    EXPECT_GT(pruned.total_bytes_skipped(), 0u) << "colmajor=" << colmajor;
    EXPECT_LT(pruned.total_bytes_read(), cold.total_bytes_read());

    // Spatio-temporal pruning needs no sidecar: the implicit TIME/LAT/LON
    // dimensions resolve to chunk intervals at plan time.
    const char* spatial =
        "SELECT * FROM TitanST WHERE TIME = 2 AND LAT <= 2 AND LON IN (1, 3)";
    expr::BoundQuery sq = unindexed.plan().bind(spatial);
    storm::QueryResult sr = unindexed.query_detailed(spatial);
    expr::Table sexpect = dataset::titan_st_oracle(cfg, sq);
    EXPECT_EQ(sexpect.num_rows(),
              static_cast<uint64_t>(2 * 2 * cfg.cells_per_chunk));
    EXPECT_TRUE(sr.merged().same_rows(sexpect)) << "colmajor=" << colmajor;
    EXPECT_LT(sr.total_bytes_read(), cold.total_bytes_read() / 4)
        << "colmajor=" << colmajor;
  }
}

TEST(ZoneMapTest, StaleFileFallsBackToFullScan) {
  dataset::IparsConfig cfg = small_cfg();
  TempDir tmp("zms");
  auto gen = dataset::generate_ipars(cfg, dataset::IparsLayout::kL0,
                                     tmp.str());
  codegen::DataServicePlan plan =
      codegen::DataServicePlan::from_text(gen.descriptor_text, "IparsData",
                                          gen.root);
  std::string dir = tmp.str() + "/.zm";
  zonemap::ZoneMap::build(plan).save(dir, plan);

  // Bump one data file's mtime: same bytes, but the fingerprint no longer
  // matches, so its entries must be dropped on load.
  const std::string& victim = plan.model().files().front().full_path;
  std::filesystem::last_write_time(
      victim, std::filesystem::last_write_time(victim) +
                  std::chrono::seconds(7));

  auto reloaded = zonemap::ZoneMap::load(dir, plan);
  ASSERT_TRUE(reloaded.has_value());
  EXPECT_EQ(reloaded->num_stale_files(), 1u);
  for (const auto& [key, b] : reloaded->entries())
    EXPECT_NE(key.file, victim);

  // Queries through the partially-stale map still match the oracle: the
  // victim's chunks are merely unindexed (may_match = true).
  VirtualTable::Options zopt;
  zopt.zonemap_dir = dir;
  VirtualTable vt =
      VirtualTable::open(gen.descriptor_text, "IparsData", gen.root, zopt);
  ASSERT_TRUE(vt.has_zonemap());
  EXPECT_EQ(vt.zone_map()->num_stale_files(), 1u);
  expr::BoundQuery q = vt.plan().bind(kSelective);
  EXPECT_TRUE(vt.query(kSelective).same_rows(dataset::ipars_oracle(cfg, q)));
}

TEST(ZoneMapTest, RebuildRefreshesStaleSidecar) {
  dataset::IparsConfig cfg = small_cfg();
  TempDir tmp("zmrb");
  auto gen = dataset::generate_ipars(cfg, dataset::IparsLayout::kL0,
                                     tmp.str());
  codegen::DataServicePlan plan =
      codegen::DataServicePlan::from_text(gen.descriptor_text, "IparsData",
                                          gen.root);
  std::string dir = tmp.str() + "/.zm";
  zonemap::ZoneMap::build(plan).save(dir, plan);
  const std::string& victim = plan.model().files().front().full_path;
  std::filesystem::last_write_time(
      victim, std::filesystem::last_write_time(victim) +
                  std::chrono::seconds(7));

  // open(build_zonemap=true, zonemap_dir=...) sees the stale load and
  // rebuilds a fully fresh sidecar in place.
  VirtualTable::Options zopt;
  zopt.build_zonemap = true;
  zopt.zonemap_dir = dir;
  {
    auto stale = zonemap::ZoneMap::load(dir, plan);
    ASSERT_TRUE(stale && stale->num_stale_files() == 1u);
  }
  VirtualTable vt =
      VirtualTable::open(gen.descriptor_text, "IparsData", gen.root, zopt);
  ASSERT_TRUE(vt.has_zonemap());
  EXPECT_EQ(vt.zone_map()->num_stale_files(), 0u);
  auto fresh = zonemap::ZoneMap::load(dir, plan);
  ASSERT_TRUE(fresh.has_value());
  EXPECT_EQ(fresh->num_stale_files(), 0u);
}

TEST(PlanCacheTest, HitReplaysIdenticalPlans) {
  dataset::IparsConfig cfg = small_cfg();
  TempDir tmp("pc");
  auto gen = dataset::generate_ipars(cfg, dataset::IparsLayout::kL0,
                                     tmp.str());
  VirtualTable::Options opt;
  opt.build_zonemap = true;
  opt.plan_cache_capacity = 4;
  VirtualTable vt =
      VirtualTable::open(gen.descriptor_text, "IparsData", gen.root, opt);
  ASSERT_NE(vt.plan_cache(), nullptr);

  expr::Table first = vt.query(kSelective);
  auto s1 = vt.plan_cache_stats();
  EXPECT_EQ(s1.misses, 1u);
  EXPECT_EQ(s1.entries, 1u);

  // Second run (different formatting, same canonical shape) hits and
  // returns the same rows.
  expr::Table second =
      vt.query("select  *  from IparsData where SOIL >= 0.9");
  auto s2 = vt.plan_cache_stats();
  EXPECT_GE(s2.hits, 1u);
  EXPECT_EQ(s2.misses, 1u);
  EXPECT_TRUE(second.same_rows(first));

  // The cached per-node plans are structurally identical to a cold
  // re-plan under the same chunk filter.
  auto entry = vt.plan_cache()->find(vt.plan_key(kSelective));
  ASSERT_NE(entry, nullptr);
  expr::BoundQuery q = vt.plan().bind(kSelective);
  std::vector<afc::PlanResult> cold =
      vt.cluster().plan_nodes(q, vt.chunk_filter());
  ASSERT_EQ(entry->node_plans.size(), cold.size());
  for (std::size_t n = 0; n < cold.size(); ++n)
    EXPECT_EQ(entry->node_plans[n], cold[n]);
}

TEST(PlanCacheTest, LruEvictsAndRecounts) {
  PlanCache cache(2);
  meta::Schema schema;
  schema.name = "S";
  meta::Attribute attr;
  attr.name = "A";
  attr.type = DataType::kFloat64;
  schema.attrs.push_back(attr);
  auto mk = [&] {
    sql::SelectQuery q;
    q.table = "S";
    return std::make_shared<CachedPlan>(
        expr::BoundQuery(std::move(q), schema));
  };
  EXPECT_EQ(cache.find("a"), nullptr);  // miss
  cache.insert("a", mk());
  cache.insert("b", mk());
  EXPECT_NE(cache.find("a"), nullptr);  // a is now most recent
  cache.insert("c", mk());              // evicts b
  EXPECT_EQ(cache.find("b"), nullptr);
  EXPECT_NE(cache.find("a"), nullptr);
  EXPECT_NE(cache.find("c"), nullptr);
  auto s = cache.stats();
  EXPECT_EQ(s.entries, 2u);
  EXPECT_EQ(s.capacity, 2u);
  EXPECT_EQ(s.hits, 3u);
  EXPECT_EQ(s.misses, 2u);
}

}  // namespace
}  // namespace adv
