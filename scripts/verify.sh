#!/usr/bin/env bash
# Tier-1 verify plus race check for the intra-node parallel pipeline and
# the admission scheduler / query server.
#
#   1. default build + full ctest suite
#   2. ThreadSanitizer build (cmake --preset tsan) of the concurrency-
#      sensitive test binaries — parallel pipeline, scheduler, networked
#      server — run with halt_on_error so any data race fails the script
#   3. bench_check.sh — scan/pruning/plan-cache/served-query throughput vs
#      the committed BENCH_micro.json (>20% rows_per_sec or
#      queries_per_sec regression, or any identical_to_baseline=false,
#      fails)
#
# Set VERIFY_SKIP_TSAN=1 to run only steps 1 and 3 (e.g. on hosts without
# tsan); VERIFY_SKIP_BENCH=1 skips the perf gate.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc)"

cmake -B build -S . >/dev/null
cmake --build build -j"$JOBS"
(cd build && ctest --output-on-failure -j"$JOBS")

if [[ "${VERIFY_SKIP_TSAN:-0}" != "1" ]]; then
  cmake --preset tsan >/dev/null
  cmake --build build-tsan -j"$JOBS" \
    --target storm_test storm_concurrency_test sched_test sched_stress_test \
             net_test
  # Exercise the parallel worker path even on single-core hosts.
  export ADV_THREADS_PER_NODE=4
  TSAN_OPTIONS=halt_on_error=1 ./build-tsan/tests/storm_test
  TSAN_OPTIONS=halt_on_error=1 ./build-tsan/tests/storm_concurrency_test
  TSAN_OPTIONS=halt_on_error=1 ./build-tsan/tests/sched_test
  TSAN_OPTIONS=halt_on_error=1 ./build-tsan/tests/sched_stress_test
  TSAN_OPTIONS=halt_on_error=1 ./build-tsan/tests/net_test
fi

if [[ "${VERIFY_SKIP_BENCH:-0}" != "1" ]]; then
  scripts/bench_check.sh
fi

echo "verify OK"
