#!/usr/bin/env bash
# Tier-1 verify plus race check for the intra-node parallel pipeline and
# the admission scheduler / query server.
#
#   1. default build + full ctest suite (all tiers: fast, slow, fuzz,
#      fault, dist — dist spawns real adv_node daemons and kill -9s them),
#      then the fast tier repeated under ADV_KERNEL_MODE=interp
#      and =jit so every extraction kernel tier passes the same tests
#   2. bounded fuzz + fault smoke with FIXED seeds (deterministic, a few
#      seconds): the differential harness and the property suites invoked
#      directly so the ADV_FUZZ_* overrides apply (see docs/TESTING.md),
#      including jit- and interp-tier differential runs, the jit.compile
#      and agg.merge fault campaigns, and the scatter/gather dist backend
#      (clean, under the node-death campaign, and under the
#      partial-aggregate-merge campaign)
#   3. serving-layer smoke: tools/adv_load closed loop with two
#      equal-weight tenants gating fair-share deviation and result-cache
#      hits
#   4. ThreadSanitizer build (cmake --preset tsan) of the concurrency-
#      sensitive test binaries — parallel pipeline, scheduler, serving
#      layer, networked server, and the dq differential/fault harness —
#      run with halt_on_error so any data race fails the script
#   5. Address+UndefinedBehaviorSanitizer build (cmake --preset asan) of
#      the whole tree, running the fast test tier (ctest --preset
#      fast-asan) so every layout family / extraction / join path is
#      checked for heap errors and UB on each verify
#   6. bench_check.sh — scan/pruning/plan-cache/served-query/serving-cache
#      throughput vs the committed BENCH_micro.json (a BENCH_CHECK_TOLERANCE
#      rows_per_sec or queries_per_sec regression, or any
#      identical_to_baseline=false, fails; skips cleanly when no baseline
#      is committed)
#
# Set VERIFY_SKIP_TSAN=1 to skip step 4 (e.g. on hosts without tsan);
# VERIFY_SKIP_ASAN=1 skips step 5; VERIFY_SKIP_BENCH=1 skips the perf
# gate.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc)"

cmake -B build -S . >/dev/null
cmake --build build -j"$JOBS"
(cd build && ctest --output-on-failure -j"$JOBS")

# The full suite above runs under the default kernel tier (vector); the
# fast tier repeats under the other two so every extraction path keeps
# passing the same tests (docs/KERNELS.md).  The jit pass exercises real
# compile+dlopen on hosts with a compiler and the vector fallback on
# hosts without one — both are supported configurations.
for mode in interp jit; do
  (cd build && ADV_KERNEL_MODE="$mode" ctest -L fast --output-on-failure \
    -j"$JOBS")
done

# Bounded fuzz + fault smoke, fixed seeds so a failure here is always
# reproducible with the printed replay command.
ADV_FUZZ_SEED=97 ./build/tests/property_test >/dev/null
ADV_FUZZ_SEED=97 ./build/tests/interval_fuzz_test >/dev/null
./build/tools/adv_fuzz --seed 101 --seeds 3 >/dev/null
./build/tools/adv_fuzz --seed 101 --campaign io >/dev/null
./build/tools/adv_fuzz --seed 101 --campaign net --server >/dev/null
./build/tools/adv_fuzz --seed 101 --campaign node --partial >/dev/null
./build/tools/adv_fuzz --seed 101 --seeds 3 --kernel jit >/dev/null
./build/tools/adv_fuzz --seed 101 --campaign jit --kernel jit >/dev/null
# Aggregation pushdown: the corpus includes GROUP BY/aggregate/top-k
# shapes, so the interp run covers the fold under a second kernel tier
# and the agg campaign injects faults into the partial-aggregate merge.
./build/tools/adv_fuzz --seed 101 --seeds 3 --kernel interp >/dev/null
./build/tools/adv_fuzz --seed 101 --campaign agg >/dev/null
# Distribution backend: every query also scattered through per-node
# daemons behind a DistCoordinator; the node campaign exercises the
# coordinator's typed-failure retry path under deterministic injection,
# the agg campaign the kAggBatch delta/commit no-double-count contract.
./build/tools/adv_fuzz --seed 101 --seeds 2 --dist >/dev/null
./build/tools/adv_fuzz --seed 101 --campaign node --dist >/dev/null
./build/tools/adv_fuzz --seed 101 --campaign agg --dist >/dev/null
echo "fuzz/fault smoke OK"

# Multi-process distribution smoke: the dist label spawns real adv_node
# processes, kill -9s primaries mid-stream (fixed commit-point triggers),
# and demands byte-identical rows via replica failover.  Repeated under
# the interp tier so daemon-side kernel dispatch is covered too.
(cd build && ctest -L dist --output-on-failure -j"$JOBS")
(cd build && ADV_KERNEL_MODE=interp ctest -L dist --output-on-failure \
  -j"$JOBS")
echo "dist chaos smoke OK"

# Serving-layer smoke: the closed-loop load generator against a selfhosted
# server with the result cache on — two equal-weight tenants on one run
# slot must each get ~half the completions (fairness gate) and the hot set
# must produce result-cache hits (docs/SERVING.md §6–7).  Exit 1 = broken
# run, exit 2 = a gate failed; either fails verify.
./build/tools/adv_load --selfhost --duration 2 --seed 11 \
  --tenants a:1:3,b:1:3 --hot-ratio 0.8 --think-ms 0 --max-concurrent 1 \
  --check-fairness 0.15 --check-cache-hits 1 --quiet
echo "adv_load serving smoke OK"

if [[ "${VERIFY_SKIP_TSAN:-0}" != "1" ]]; then
  cmake --preset tsan >/dev/null
  cmake --build build-tsan -j"$JOBS" \
    --target storm_test storm_concurrency_test sched_test sched_stress_test \
             net_test serve_test kernels_test agg_test dq_diff_test \
             dq_fault_test dist_chaos_test adv_node
  # Exercise the parallel worker path even on single-core hosts.
  export ADV_THREADS_PER_NODE=4
  TSAN_OPTIONS=halt_on_error=1 ./build-tsan/tests/storm_test
  TSAN_OPTIONS=halt_on_error=1 ./build-tsan/tests/storm_concurrency_test
  TSAN_OPTIONS=halt_on_error=1 ./build-tsan/tests/sched_test
  TSAN_OPTIONS=halt_on_error=1 ./build-tsan/tests/sched_stress_test
  TSAN_OPTIONS=halt_on_error=1 ./build-tsan/tests/net_test
  # Serving layer: result-cache single-flight (leader/follower latch),
  # LRU under concurrent inserts, and the tenant-quota client burst.
  TSAN_OPTIONS=halt_on_error=1 ./build-tsan/tests/serve_test
  # The kernel tiers share arenas/caches across extraction workers; the
  # JIT cache in particular serializes concurrent compiles on one lock.
  TSAN_OPTIONS=halt_on_error=1 ./build-tsan/tests/kernels_test
  # Aggregation pushdown: per-worker sinks folding concurrently, then
  # the two-phase merge across worker and node boundaries.
  TSAN_OPTIONS=halt_on_error=1 ./build-tsan/tests/agg_test
  # Bounded corpora under tsan: the full wall clock stays in seconds.
  ADV_FUZZ_ITERS=6 TSAN_OPTIONS=halt_on_error=1 \
    ./build-tsan/tests/dq/dq_diff_test
  TSAN_OPTIONS=halt_on_error=1 ./build-tsan/tests/dq/dq_fault_test
  # Distribution layer under tsan: daemon heartbeat/scan/control threads,
  # coordinator gather threads, and real tsan-built adv_node processes.
  ADV_NODE_BIN=./build-tsan/tools/adv_node TSAN_OPTIONS=halt_on_error=1 \
    ./build-tsan/tests/dist_chaos_test
fi

if [[ "${VERIFY_SKIP_ASAN:-0}" != "1" ]]; then
  # Heap errors and UB (overflow, misaligned loads, bad shifts) across the
  # whole fast tier: layout families, the three kernel tiers, metadata
  # parsing, and the cross-dataset join path.  -fno-sanitize-recover=all
  # in the preset turns any UBSan diagnostic into a test failure.
  cmake --preset asan >/dev/null
  cmake --build build-asan -j"$JOBS"
  ctest --preset fast-asan -j"$JOBS"
fi

if [[ "${VERIFY_SKIP_BENCH:-0}" != "1" ]]; then
  scripts/bench_check.sh
fi

echo "verify OK"
