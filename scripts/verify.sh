#!/usr/bin/env bash
# Tier-1 verify plus race check for the intra-node parallel pipeline.
#
#   1. default build + full ctest suite
#   2. ThreadSanitizer build (cmake --preset tsan) of the concurrency-
#      sensitive test binaries, run with halt_on_error so any data race
#      fails the script
#
# Set VERIFY_SKIP_TSAN=1 to run only step 1 (e.g. on hosts without tsan).
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc)"

cmake -B build -S . >/dev/null
cmake --build build -j"$JOBS"
(cd build && ctest --output-on-failure -j"$JOBS")

if [[ "${VERIFY_SKIP_TSAN:-0}" != "1" ]]; then
  cmake --preset tsan >/dev/null
  cmake --build build-tsan -j"$JOBS" --target storm_test storm_concurrency_test
  # Exercise the parallel worker path even on single-core hosts.
  export ADV_THREADS_PER_NODE=4
  TSAN_OPTIONS=halt_on_error=1 ./build-tsan/tests/storm_test
  TSAN_OPTIONS=halt_on_error=1 ./build-tsan/tests/storm_concurrency_test
fi

echo "verify OK"
