#!/usr/bin/env bash
# Perf regression gate: re-runs the bench_micro scan/pruning/plan-cache
# sections and compares them against the committed BENCH_micro.json.
#
# Fails when
#   * any matching (query, config) entry's rows_per_sec (or, for the
#     served-query section, queries_per_sec) regresses by more than
#     BENCH_CHECK_TOLERANCE (default 20%), or
#   * identical_to_baseline is false anywhere in the fresh run (a
#     correctness bug, not a perf one).
#
# Entries present in only one of the two files (new or retired
# configurations) are skipped — the gate compares, it does not freeze the
# benchmark's shape.  Requires a built tree (scripts/verify.sh builds one).
set -euo pipefail
cd "$(dirname "$0")/.."

BENCH="${BENCH_CHECK_BINARY:-build/bench/bench_micro}"
BASELINE="BENCH_micro.json"
TOLERANCE="${BENCH_CHECK_TOLERANCE:-0.20}"

[[ -x "$BENCH" ]] || { echo "bench_check: $BENCH not built" >&2; exit 1; }
# No committed baseline is a skip, not a failure: fresh checkouts and
# branches that retired the baseline still get the rest of verify.
[[ -f "$BASELINE" ]] || {
  echo "bench_check: no committed $BASELINE — skipping perf gate"
  exit 0
}

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

# The google-benchmark microbenches are not gated; skip them for speed.
BENCH_JSON_DIR="$workdir" "$BENCH" --benchmark_filter=NONE >"$workdir/log" || {
  cat "$workdir/log" >&2
  echo "bench_check: bench_micro failed" >&2
  exit 1
}

python3 - "$BASELINE" "$workdir/BENCH_micro.json" "$TOLERANCE" <<'EOF'
import json, sys

baseline_path, fresh_path, tol = sys.argv[1], sys.argv[2], float(sys.argv[3])
key = lambda r: (r.get("query"), r.get("config"))
baseline = {key(r): r for r in json.load(open(baseline_path))}
fresh = [r for r in json.load(open(fresh_path))]

failures = []
compared = skipped = 0
for r in fresh:
    if r.get("identical_to_baseline") is False:
        failures.append(f"{key(r)}: identical_to_baseline is false")
    old = baseline.get(key(r))
    metric = "queries_per_sec" if "queries_per_sec" in r else "rows_per_sec"
    if old is None or metric not in old or metric not in r:
        skipped += 1
        continue
    compared += 1
    floor = old[metric] * (1.0 - tol)
    if r[metric] < floor:
        failures.append(
            f"{key(r)}: {metric} {r[metric]:.0f} < "
            f"{floor:.0f} ({old[metric]:.0f} committed, "
            f"-{tol:.0%} tolerance)")

print(f"bench_check: {compared} entries compared, {skipped} skipped "
      f"(new/retired), tolerance {tol:.0%}")
if compared == 0 and not failures:
    print("bench_check: no overlapping baseline sections — nothing to gate")
for f in failures:
    print(f"bench_check FAIL {f}")
sys.exit(1 if failures else 0)
EOF

echo "bench_check OK"
