#!/usr/bin/env bash
# Perf regression gate: re-runs the bench_micro scan/pruning/plan-cache/
# aggregation/serving sections and compares them against the committed
# BENCH_micro.json.
#
# Fails when
#   * any matching (query, config) entry's rows_per_sec (or, for the
#     served-query and serving-cache sections, queries_per_sec) regresses
#     by more than
#     BENCH_CHECK_TOLERANCE (default 45% — consecutive best-of-N runs
#     of identical code have been measured up to ~40% apart on shared
#     1-vCPU hosts whose effective CPU speed drifts over minutes, so
#     the default must clear that noise floor; tighten via the env var
#     on quiet dedicated hardware), or
#   * identical_to_baseline is false anywhere in the fresh run (a
#     correctness bug, not a perf one), or
#   * the selective spatio-temporal Titan query (titanst-st-pruned)
#     reports bytes_skipped == 0 on any layout family — implicit-
#     dimension chunk pruning regressed (docs/LAYOUTS.md), or
#   * a fresh par-X config is slower than its seq-X twin by more than
#     BENCH_PAIR_TOLERANCE (default 10%) on the same query — parallel
#     extraction losing to sequential is a pipeline regression even when
#     both beat their committed baselines.  This rule only applies on
#     multi-CPU hosts: with one CPU the parallel configs are pure thread
#     overhead and par >= seq is not a meaningful invariant.
#
# Entries present in only one of the two files (new or retired
# configurations) are skipped — the gate compares, it does not freeze the
# benchmark's shape.  Requires a built tree (scripts/verify.sh builds one).
set -euo pipefail
cd "$(dirname "$0")/.."

BENCH="${BENCH_CHECK_BINARY:-build/bench/bench_micro}"
BASELINE="BENCH_micro.json"
TOLERANCE="${BENCH_CHECK_TOLERANCE:-0.45}"
PAIR_TOLERANCE="${BENCH_PAIR_TOLERANCE:-0.10}"

[[ -x "$BENCH" ]] || { echo "bench_check: $BENCH not built" >&2; exit 1; }
# No committed baseline is a skip, not a failure: fresh checkouts and
# branches that retired the baseline still get the rest of verify.
[[ -f "$BASELINE" ]] || {
  echo "bench_check: no committed $BASELINE — skipping perf gate"
  exit 0
}

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

# The google-benchmark microbenches are not gated; skip them for speed.
# The gated sections report best-of-N wall times; the fresh run gets a
# couple of extra repeats (vs the default 3 used when committing the
# baseline) so scheduler noise on short sections lands above the
# tolerance floor instead of producing false regressions.
BENCH_JSON_DIR="$workdir" ADV_REPEATS="${BENCH_CHECK_REPEATS:-5}" \
  "$BENCH" --benchmark_filter=NONE >"$workdir/log" || {
  cat "$workdir/log" >&2
  echo "bench_check: bench_micro failed" >&2
  exit 1
}

python3 - "$BASELINE" "$workdir/BENCH_micro.json" "$TOLERANCE" \
  "$PAIR_TOLERANCE" <<'EOF'
import json, sys

baseline_path, fresh_path, tol = sys.argv[1], sys.argv[2], float(sys.argv[3])
pair_tol = float(sys.argv[4])
key = lambda r: (r.get("query"), r.get("config"))
baseline = {key(r): r for r in json.load(open(baseline_path))}
fresh = [r for r in json.load(open(fresh_path))]

failures = []
compared = skipped = 0
for r in fresh:
    if r.get("identical_to_baseline") is False:
        failures.append(f"{key(r)}: identical_to_baseline is false")
    old = baseline.get(key(r))
    metric = "queries_per_sec" if "queries_per_sec" in r else "rows_per_sec"
    if old is None or metric not in old or metric not in r:
        skipped += 1
        continue
    compared += 1
    floor = old[metric] * (1.0 - tol)
    if r[metric] < floor:
        failures.append(
            f"{key(r)}: {metric} {r[metric]:.0f} < "
            f"{floor:.0f} ({old[metric]:.0f} committed, "
            f"-{tol:.0%} tolerance)")

# par/seq pairing within the fresh run: par-X must keep up with seq-X.
# Only meaningful when the host can actually run threads in parallel —
# on a single-CPU machine the par configs measure scheduler overhead.
import os
multi_cpu = (os.cpu_count() or 1) >= 2
by_query = {}
for r in fresh:
    if "rows_per_sec" in r and r.get("config"):
        by_query.setdefault(r.get("query"), {})[r["config"]] = r["rows_per_sec"]
pairs = 0
for query, configs in by_query.items():
    if not multi_cpu:
        break
    for config, rps in configs.items():
        if not config.startswith("par-"):
            continue
        seq = configs.get("seq-" + config[len("par-"):])
        if seq is None:
            continue
        pairs += 1
        if rps < seq * (1.0 - pair_tol):
            failures.append(
                f"({query!r}, {config!r}): rows_per_sec {rps:.0f} < "
                f"sequential twin {seq:.0f} (-{pair_tol:.0%} tolerance)")

# Spatio-temporal pruning gate: the selective Titan-grid query must skip
# bytes at plan time on every layout family — bytes_skipped == 0 means
# implicit-dimension chunk pruning regressed (docs/LAYOUTS.md).
for r in fresh:
    if str(r.get("config", "")).startswith("titanst-st-pruned") and \
            not r.get("bytes_skipped", 0):
        failures.append(
            f"{key(r)}: bytes_skipped is 0 on the selective "
            "spatio-temporal query (chunk pruning regressed)")

pair_note = (f"{pairs} par/seq pairs, pair tolerance {pair_tol:.0%}"
             if multi_cpu else "par/seq pairing skipped (single-CPU host)")
print(f"bench_check: {compared} entries compared, {skipped} skipped "
      f"(new/retired), tolerance {tol:.0%}; {pair_note}")
if compared == 0 and not failures:
    print("bench_check: no overlapping baseline sections — nothing to gate")
for f in failures:
    print(f"bench_check FAIL {f}")
sys.exit(1 if failures else 0)
EOF

echo "bench_check OK"
